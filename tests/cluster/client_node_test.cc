#include "cluster/client_node.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "cluster/ideal_manager.h"
#include "cluster/server_node.h"
#include "net/clock.h"
#include "workload/catalog.h"

namespace finelb::cluster {
namespace {

struct TestCluster {
  std::vector<std::unique_ptr<ServerNode>> servers;
  std::vector<ServerEndpoints> endpoints;

  explicit TestCluster(int n) {
    for (int s = 0; s < n; ++s) {
      ServerOptions opts;
      opts.id = s;
      opts.inject_busy_reply_delay = false;
      opts.seed = 100 + static_cast<std::uint64_t>(s);
      servers.push_back(std::make_unique<ServerNode>(opts));
      servers.back()->start();
      endpoints.push_back({servers.back()->id(),
                           servers.back()->service_address(),
                           servers.back()->load_address()});
    }
  }
  ~TestCluster() {
    for (auto& s : servers) s->stop();
  }
};

ClientOptions base_options(const TestCluster& cluster, PolicyConfig policy,
                           std::int64_t requests) {
  ClientOptions opts;
  opts.id = 1;
  opts.policy = policy;
  opts.servers = cluster.endpoints;
  opts.total_requests = requests;
  opts.warmup_requests = 0;
  opts.seed = 7;
  return opts;
}

// Fast workload: 2 ms mean service, arrivals scaled for light load so the
// tests finish quickly.
std::unique_ptr<RequestSource> fast_source(double interval_scale = 1.0) {
  static const Workload w = make_poisson_exp(0.002);
  static std::uint64_t seed = 900;
  return w.make_source(interval_scale, ++seed);
}

TEST(ClientNodeTest, RandomPolicyCompletesAllRequests) {
  TestCluster cluster(2);
  ClientNode client(base_options(cluster, PolicyConfig::random(), 200),
                    fast_source());
  client.run();
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.issued, 200);
  EXPECT_EQ(stats.completed, 200);
  EXPECT_EQ(stats.response_timeouts, 0);
  EXPECT_GT(stats.response_ms.mean(), 2.0);  // at least the service time
  EXPECT_EQ(stats.polls_sent, 0);
}

TEST(ClientNodeTest, PollingPolicySendsInquiries) {
  TestCluster cluster(4);
  ClientNode client(base_options(cluster, PolicyConfig::polling(2), 150),
                    fast_source());
  client.run();
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.completed, 150);
  EXPECT_EQ(stats.polls_sent, 2 * 150);
  EXPECT_GT(stats.poll_replies_used, 0);
  EXPECT_GT(stats.poll_time_ms.count(), 0);
  // Loopback polls on idle servers finish way under the 50 ms backstop.
  EXPECT_LT(stats.poll_time_ms.mean(), 25.0);
}

TEST(ClientNodeTest, TelemetryMirrorsClientStats) {
  TestCluster cluster(4);
  ClientOptions opts = base_options(cluster, PolicyConfig::polling(2), 150);
  opts.trace_sample_period = 10;  // every 10th access leaves a trace
  ClientNode client(std::move(opts), fast_source());
  client.run();
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.completed, 150);

  if (!telemetry::kEnabled) {
    EXPECT_TRUE(client.metrics().snapshot().counters.empty());
    return;
  }
  const auto snap = client.metrics().snapshot("client.1");
  EXPECT_EQ(snap.node, "client.1");
  std::int64_t issued = -1, completed = -1, polls_sent = -1;
  for (const auto& [name, value] : snap.counters) {
    if (name == "requests_issued") issued = value;
    if (name == "requests_completed") completed = value;
    if (name == "polls_sent") polls_sent = value;
  }
  EXPECT_EQ(issued, stats.issued);
  EXPECT_EQ(completed, stats.completed);
  EXPECT_EQ(polls_sent, stats.polls_sent);
  // Histogram mirror carries the same sample counts as ClientStats.
  for (const auto& hist : snap.histograms) {
    if (hist.name == "poll_rtt_ms") {
      EXPECT_EQ(hist.count, stats.poll_rtt_ms.count());
      EXPECT_GT(hist.count, 0);
    }
    if (hist.name == "response_time_ms") {
      EXPECT_EQ(hist.count, stats.response_ms.count());
    }
  }
  // Sampled accesses left full lifecycle traces keyed by the globally
  // unique request id (client id << 40 | access index); the embedded access
  // index honours the sampling period.
  const auto trace = client.trace().snapshot();
  EXPECT_FALSE(trace.empty());
  bool saw_enqueue = false, saw_pick = false, saw_response = false;
  for (const auto& rec : trace) {
    EXPECT_EQ(rec.request_id >> 40, 1u);
    EXPECT_EQ((rec.request_id & ((1ull << 40) - 1)) % 10, 0u);
    if (rec.point == telemetry::TracePoint::kClientEnqueue) {
      saw_enqueue = true;
    }
    if (rec.point == telemetry::TracePoint::kServerPick) saw_pick = true;
    if (rec.point == telemetry::TracePoint::kResponse) saw_response = true;
  }
  EXPECT_TRUE(saw_enqueue);
  EXPECT_TRUE(saw_pick);
  EXPECT_TRUE(saw_response);
  // And the JSON snapshot is exportable end-to-end.
  const std::string json = client.stats_json();
  EXPECT_NE(json.find("\"node\":\"client.1\""), std::string::npos);
  EXPECT_NE(json.find("\"poll_rtt_ms\""), std::string::npos);
}

TEST(ClientNodeTest, PollSizeClampsToServerCount) {
  TestCluster cluster(2);
  ClientNode client(base_options(cluster, PolicyConfig::polling(8), 50),
                    fast_source());
  client.run();
  EXPECT_EQ(client.stats().polls_sent, 2 * 50)
      << "poll set must clamp to the two live servers";
  EXPECT_EQ(client.stats().completed, 50);
}

TEST(ClientNodeTest, DiscardModeBoundsPollTime) {
  TestCluster cluster(3);
  ClientNode client(
      base_options(cluster, PolicyConfig::polling(2, from_ms(1.0)), 150),
      fast_source());
  client.run();
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.completed, 150);
  // No decision may take longer than the discard deadline plus loop slack.
  EXPECT_LT(stats.poll_time_ms.max(), 10.0);
}

TEST(ClientNodeTest, IdealPolicyUsesManagerAndReleases) {
  TestCluster cluster(3);
  IdealManager manager(3, 5);
  manager.start();
  ClientOptions opts = base_options(cluster, PolicyConfig::ideal(), 120);
  opts.ideal_manager = manager.address();
  ClientNode client(std::move(opts), fast_source());
  client.run();
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.completed, 120);
  EXPECT_EQ(stats.manager_timeouts, 0);
  EXPECT_EQ(manager.acquires(), 120);
  // Allow the final releases to land.
  net::sleep_for(100 * kMillisecond);
  EXPECT_EQ(manager.releases(), 120);
  for (const auto q : manager.tracked_queues()) EXPECT_EQ(q, 0);
  manager.stop();
}

TEST(ClientNodeTest, IdealWithoutManagerAddressRejected) {
  TestCluster cluster(1);
  EXPECT_THROW(ClientNode(base_options(cluster, PolicyConfig::ideal(), 10),
                          fast_source()),
               InvariantError);
}

TEST(ClientNodeTest, BroadcastPolicyRejected) {
  TestCluster cluster(1);
  EXPECT_THROW(
      ClientNode(base_options(cluster, PolicyConfig::broadcast(kSecond), 10),
                 fast_source()),
      InvariantError);
}

TEST(ClientNodeTest, WarmupExcludedFromRecordedStats) {
  TestCluster cluster(2);
  ClientOptions opts = base_options(cluster, PolicyConfig::random(), 100);
  opts.warmup_requests = 40;
  ClientNode client(std::move(opts), fast_source());
  client.run();
  EXPECT_EQ(client.stats().completed, 100);
  EXPECT_EQ(client.stats().recorded, 60);
  EXPECT_EQ(client.stats().response_ms.count(), 60);
}

TEST(ClientNodeTest, DeadServerProducesResponseTimeouts) {
  TestCluster cluster(1);
  // Add a second, dead endpoint: a bound socket nobody serves.
  net::UdpSocket dead_service;
  net::UdpSocket dead_load;
  ClientOptions opts = base_options(cluster, PolicyConfig::random(), 60);
  opts.servers.push_back(
      {1, dead_service.local_address(), dead_load.local_address()});
  opts.response_timeout = 300 * kMillisecond;
  ClientNode client(std::move(opts), fast_source());
  client.run();
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.completed + stats.response_timeouts, 60);
  EXPECT_GT(stats.response_timeouts, 10) << "~half the requests hit the dead "
                                            "server and must time out";
  EXPECT_GT(stats.completed, 10);
}

TEST(ClientNodeTest, PollingSurvivesDeadLoadServer) {
  TestCluster cluster(2);
  net::UdpSocket dead_service;
  net::UdpSocket dead_load;
  ClientOptions opts = base_options(cluster, PolicyConfig::polling(3), 60);
  opts.servers.push_back(
      {2, dead_service.local_address(), dead_load.local_address()});
  opts.max_poll_wait = 100 * kMillisecond;
  opts.response_timeout = 500 * kMillisecond;
  ClientNode client(std::move(opts), fast_source(4.0));
  client.run();
  const ClientStats& stats = client.stats();
  // Every access resolves: polls to the dead node time out and the round
  // decides with the replies that did arrive.
  EXPECT_EQ(stats.issued, 60);
  EXPECT_GT(stats.polls_timed_out, 0);
  EXPECT_GT(stats.completed, 0);
}

TEST(ClientNodeTest, ValidationErrors) {
  TestCluster cluster(1);
  ClientOptions no_servers = base_options(cluster, PolicyConfig::random(), 10);
  no_servers.servers.clear();
  EXPECT_THROW(ClientNode(std::move(no_servers), fast_source()),
               InvariantError);

  ClientOptions zero = base_options(cluster, PolicyConfig::random(), 0);
  EXPECT_THROW(ClientNode(std::move(zero), fast_source()), InvariantError);

  EXPECT_THROW(ClientNode(base_options(cluster, PolicyConfig::random(), 10),
                          nullptr),
               InvariantError);
}

}  // namespace
}  // namespace finelb::cluster
