// End-to-end failover: a killed server's soft-state directory entry must
// expire within its ttl, and clients that refresh their mapping (plus the
// timeout blacklist) must route subsequent work around the dead node —
// the paper's §3.1 claim that the infrastructure "operates smoothly in the
// presence of transient failures", exercised for real.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/directory.h"
#include "cluster/experiment.h"
#include "cluster/server_node.h"
#include "net/clock.h"
#include "telemetry/metrics.h"
#include "workload/catalog.h"

namespace finelb::cluster {
namespace {

const Workload& fast_workload() {
  static const Workload w = make_poisson_exp(0.005);  // 5 ms services
  return w;
}

TEST(FailoverTest, KilledServerEntryExpiresWithinTtl) {
  DirectoryServer directory;
  directory.start();

  constexpr SimDuration kInterval = 50 * kMillisecond;
  constexpr SimDuration kTtl = 300 * kMillisecond;
  std::vector<std::unique_ptr<ServerNode>> servers;
  for (int s = 0; s < 3; ++s) {
    ServerOptions opts;
    opts.id = s;
    servers.push_back(std::make_unique<ServerNode>(opts));
    servers.back()->enable_publishing(directory.address(), "svc",
                                      /*partition=*/0, kInterval, kTtl);
    servers.back()->start();
  }

  DirectoryClient client(directory.address());
  const auto before = client.wait_for_servers("svc", 3);
  ASSERT_EQ(before.size(), 3u);

  const SimTime killed_at = net::monotonic_now();
  servers[1]->stop();  // silent death: no deregistration message

  // The dead entry must disappear no later than ttl past its last possible
  // refresh; poll until it does and bound the elapsed time.
  bool expired = false;
  SimTime expired_at = 0;
  while (net::monotonic_now() - killed_at < kTtl + 500 * kMillisecond) {
    const auto snapshot = client.fetch("svc");
    const bool gone =
        std::none_of(snapshot.begin(), snapshot.end(),
                     [](const ServiceEndpoint& e) { return e.server == 1; });
    if (gone) {
      expired = true;
      expired_at = net::monotonic_now();
      break;
    }
    net::sleep_for(20 * kMillisecond);
  }
  ASSERT_TRUE(expired) << "dead server's soft state never expired";
  EXPECT_LE(expired_at - killed_at, kTtl + 200 * kMillisecond);

  // Survivors stay live the whole time.
  const auto after = client.fetch("svc");
  EXPECT_EQ(after.size(), 2u);

  for (auto& server : servers) server->stop();
  directory.stop();
}

PrototypeConfig failover_config(PolicyConfig policy) {
  PrototypeConfig config;
  config.servers = 4;
  config.clients = 2;
  config.policy = policy;
  config.load = 0.6;
  config.total_requests = 2000;
  config.per_request_overhead_sec = 300e-6;
  config.response_timeout = 300 * kMillisecond;
  // Soft state tight enough that expiry happens well inside the run.
  config.publish_interval = 50 * kMillisecond;
  config.publish_ttl = 400 * kMillisecond;
  config.kills = {{1, kSecond}};
  config.timeline_bucket = 500 * kMillisecond;
  config.seed = 17;
  return config;
}

TEST(FailoverTest, PollsRouteAroundKilledServer) {
  PrototypeConfig config = failover_config(PolicyConfig::polling(2));
  config.client_mapping_refresh = 150 * kMillisecond;
  config.blacklist_cooldown = kSecond;
  const PrototypeResult r = run_prototype(config, fast_workload());

  EXPECT_EQ(r.servers_killed, 1);
  EXPECT_EQ(r.clients.issued, config.total_requests);
  EXPECT_GT(r.clients.mapping_refreshes, 0);
  // A dead poll target answers no inquiries and then drops out of the
  // mapping; nearly everything must still complete.
  EXPECT_GE(r.clients.completed, config.total_requests * 95 / 100);
  // Once the entry expired and the mapping refreshed, late buckets must be
  // failure-free: the whole point of routing around the corpse.
  ASSERT_GE(r.clients.timeline.size(), 3u);
  std::int64_t late_failed = 0;
  const std::size_t tail_start = r.clients.timeline.size() - 2;
  for (std::size_t b = tail_start; b < r.clients.timeline.size(); ++b) {
    late_failed += r.clients.timeline[b].failed;
  }
  EXPECT_EQ(late_failed, 0) << "accesses still failing after recovery";
}

// Replicated control plane, end to end: the directory leader dies mid-run
// and the cluster must barely notice — a surviving replica wins the
// election within the configured timeout, clients fail over / follow the
// redirect on their next mapping refresh, and the access stream keeps
// completing (ISSUE 6 acceptance: live failover with a healthy request
// stream across the window).
TEST(FailoverTest, DirectoryLeaderKillFailsOverMidRun) {
  PrototypeConfig config;
  config.servers = 4;
  config.clients = 2;
  config.policy = PolicyConfig::polling(2);
  config.load = 0.6;
  config.total_requests = 2000;
  config.per_request_overhead_sec = 300e-6;
  config.response_timeout = 300 * kMillisecond;
  config.publish_interval = 50 * kMillisecond;
  config.publish_ttl = 400 * kMillisecond;
  config.client_mapping_refresh = 150 * kMillisecond;
  config.directory_replicas = 3;
  config.directory_leader_kills = {kSecond};
  // Fast election timings so failover completes well inside the run.
  config.ha_heartbeat_interval = 20 * kMillisecond;
  config.ha_election_timeout_min = 80 * kMillisecond;
  config.ha_election_timeout_max = 160 * kMillisecond;
  config.ha_leader_lease = 60 * kMillisecond;
  config.trace_sample_period = 64;  // needed for the election instants
  config.collect_traces = true;
  config.seed = 17;
  const PrototypeResult r = run_prototype(config, fast_workload());

  EXPECT_EQ(r.directory_leaders_killed, 1);
  // Election counts and the failover window come from kLeaderElected trace
  // instants, which only exist when telemetry is compiled in; the
  // ride-through assertions below hold either way.
  if (telemetry::kEnabled) {
    // At least the bootstrap election plus the post-kill one.
    EXPECT_GE(r.directory_elections, 2);
    // The leaderless window is bounded by the election timeout plus slack
    // for scheduling; a window stretching to the end of the run means no
    // replica ever took over.
    EXPECT_GT(r.directory_failover_window, 0);
    EXPECT_LE(r.directory_failover_window,
              config.ha_election_timeout_max + 500 * kMillisecond);
  }
  // The request stream must ride through the control-plane failover.
  EXPECT_EQ(r.clients.issued, config.total_requests);
  EXPECT_GE(r.clients.completed, config.total_requests * 99 / 100);
  EXPECT_GT(r.clients.mapping_refreshes, 0);
}

TEST(FailoverTest, HardeningCutsFailuresForLoadBlindPolicies) {
  // Random policy keeps hitting the dead server by construction, so this
  // isolates what mapping refresh + blacklist buy.
  PrototypeConfig config = failover_config(PolicyConfig::random());
  const PrototypeResult bare = run_prototype(config, fast_workload());

  config.client_mapping_refresh = 150 * kMillisecond;
  config.blacklist_cooldown = kSecond;
  const PrototypeResult hardened = run_prototype(config, fast_workload());

  EXPECT_GT(bare.clients.response_timeouts, 0)
      << "without hardening, random must keep feeding the dead server";
  EXPECT_LT(hardened.clients.response_timeouts,
            std::max<std::int64_t>(bare.clients.response_timeouts / 3, 1))
      << "blacklist + mapping refresh must cut failures sharply";
  EXPECT_GT(hardened.clients.blacklist_insertions, 0);
}

}  // namespace
}  // namespace finelb::cluster
