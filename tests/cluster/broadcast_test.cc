// Broadcast channel and prototype broadcast policy (extension).
#include "cluster/broadcast_channel.h"

#include <gtest/gtest.h>

#include <array>

#include "cluster/experiment.h"
#include "common/check.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"
#include "workload/catalog.h"

namespace finelb::cluster {
namespace {

void wait_for_subscribers(const BroadcastChannel& channel, std::size_t n,
                          SimDuration timeout = 2 * kSecond) {
  const SimTime deadline = net::monotonic_now() + timeout;
  while (channel.subscriber_count() < n &&
         net::monotonic_now() < deadline) {
    net::sleep_for(5 * kMillisecond);
  }
  ASSERT_EQ(channel.subscriber_count(), n);
}

TEST(BroadcastChannelTest, RelaysToSubscribers) {
  BroadcastChannel channel;
  channel.start();

  net::UdpSocket subscriber;
  net::Subscribe subscribe;
  subscribe.ttl_ms = 5000;
  ASSERT_TRUE(subscriber.send_to(subscribe.encode(), channel.address()));
  wait_for_subscribers(channel, 1);

  net::UdpSocket server;
  net::LoadAnnounce announcement;
  announcement.server = 5;
  announcement.queue_length = 3;
  ASSERT_TRUE(server.send_to(announcement.encode(), channel.address()));

  net::Poller poller;
  poller.add(subscriber.fd(), 0);
  ASSERT_FALSE(poller.wait(kSecond).empty());
  std::array<std::uint8_t, 64> buf{};
  const auto size = subscriber.recv_from(buf);
  ASSERT_TRUE(size.has_value());
  const auto received =
      net::LoadAnnounce::decode(std::span(buf.data(), size->size));
  EXPECT_EQ(received.server, 5);
  EXPECT_EQ(received.queue_length, 3);
  // The datagram can reach the subscriber before the channel thread bumps
  // its counter; wait for the count rather than racing it.
  const SimTime counter_deadline = net::monotonic_now() + kSecond;
  while (channel.announcements_relayed() < 1 &&
         net::monotonic_now() < counter_deadline) {
    net::sleep_for(kMillisecond);
  }
  EXPECT_EQ(channel.announcements_relayed(), 1);
  channel.stop();
}

TEST(BroadcastChannelTest, SubscriptionExpires) {
  BroadcastChannel channel;
  channel.start();
  net::UdpSocket subscriber;
  net::Subscribe subscribe;
  subscribe.ttl_ms = 150;
  ASSERT_TRUE(subscriber.send_to(subscribe.encode(), channel.address()));
  wait_for_subscribers(channel, 1);
  net::sleep_for(250 * kMillisecond);
  EXPECT_EQ(channel.subscriber_count(), 0u);

  // Announcements after expiry go nowhere.
  net::UdpSocket server;
  net::LoadAnnounce announcement;
  announcement.server = 1;
  ASSERT_TRUE(server.send_to(announcement.encode(), channel.address()));
  net::sleep_for(50 * kMillisecond);
  EXPECT_EQ(channel.announcements_relayed(), 0);
  channel.stop();
}

TEST(BroadcastChannelTest, FanOutToMultipleSubscribers) {
  BroadcastChannel channel;
  channel.start();
  std::vector<net::UdpSocket> subscribers(3);
  net::Subscribe subscribe;
  subscribe.ttl_ms = 2000;
  for (auto& s : subscribers) {
    ASSERT_TRUE(s.send_to(subscribe.encode(), channel.address()));
  }
  wait_for_subscribers(channel, 3);
  net::UdpSocket server;
  net::LoadAnnounce announcement;
  announcement.server = 2;
  ASSERT_TRUE(server.send_to(announcement.encode(), channel.address()));
  const SimTime deadline = net::monotonic_now() + 2 * kSecond;
  while (channel.announcements_relayed() < 3 &&
         net::monotonic_now() < deadline) {
    net::sleep_for(5 * kMillisecond);
  }
  EXPECT_EQ(channel.announcements_relayed(), 3);
  std::array<std::uint8_t, 64> buf{};
  for (auto& s : subscribers) {
    EXPECT_TRUE(s.recv_from(buf).has_value());
  }
  channel.stop();
}

TEST(BroadcastPolicyPrototypeTest, EndToEndRuns) {
  PrototypeConfig config;
  config.servers = 4;
  config.clients = 2;
  config.policy = PolicyConfig::broadcast(20 * kMillisecond);
  config.load = 0.6;
  config.total_requests = 600;
  config.seed = 17;
  const Workload workload = make_poisson_exp(0.005);
  const PrototypeResult r = run_prototype(config, workload);
  EXPECT_EQ(r.clients.issued, 600);
  EXPECT_GE(r.clients.completed, 590);
  EXPECT_GT(r.clients.broadcasts_received, 0)
      << "clients must have consumed load announcements";
}

TEST(BroadcastPolicyPrototypeTest, FreshBeatsStaleInformation) {
  // The paper's Figure 3 effect on the real runtime: frequent broadcasts
  // beat second-scale broadcasts at high load.
  PrototypeConfig config;
  config.servers = 8;
  config.clients = 3;
  config.load = 0.85;
  config.total_requests = 2400;
  config.seed = 17;
  const Workload workload = make_poisson_exp(0.010);

  config.policy = PolicyConfig::broadcast(10 * kMillisecond);
  const double fresh_ms =
      run_prototype(config, workload).clients.response_ms.mean();
  config.policy = PolicyConfig::broadcast(2 * kSecond);
  const double stale_ms =
      run_prototype(config, workload).clients.response_ms.mean();
  EXPECT_GT(stale_ms, fresh_ms * 1.5);
}

}  // namespace
}  // namespace finelb::cluster
