#include "workload/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "stats/accumulator.h"

namespace finelb {
namespace {

// Property sweep: every parseable distribution must deliver the mean and
// stddev it declares (moment-matching is load calibration's foundation).
class DistributionMoments : public ::testing::TestWithParam<const char*> {};

TEST_P(DistributionMoments, SampleMomentsMatchDeclared) {
  const auto dist = parse_distribution(GetParam());
  Rng rng(99);
  Accumulator acc;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = dist->sample(rng);
    ASSERT_GE(x, 0.0) << dist->describe();
    acc.add(x);
  }
  const double mean = dist->mean();
  EXPECT_NEAR(acc.mean(), mean, std::max(mean * 0.02, 1e-9))
      << dist->describe();
  const double stddev = dist->stddev();
  // Pareto's fourth moment is infinite for alpha <= 4, so its sample stddev
  // converges too slowly for a fixed-n check; its mean check above suffices.
  const bool heavy_tail = dist->describe().rfind("pareto", 0) == 0;
  if (std::isfinite(stddev) && !heavy_tail) {
    EXPECT_NEAR(acc.stddev(), stddev, std::max(stddev * 0.08, 1e-9))
        << dist->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionMoments,
    ::testing::Values("det:0.05", "exp:0.0222", "uniform:0.01,0.03",
                      "lognormal:0.0289,0.0629",  // Medium-Grain service
                      "lognormal:0.298,0.3211",   // Medium-Grain arrivals
                      "gamma:0.0222,0.01",        // Fine-Grain service
                      "gamma:0.05,0.1",           // cv > 1 (shape < 1)
                      "weibull:0.05,0.025",       // cv < 1
                      "weibull:0.05,0.1",         // cv > 1
                      "pareto:3.5,0.01", "shiftedexp:0.01,0.02"));

TEST(DistributionTest, DeterministicIsConstant) {
  const auto dist = make_deterministic(0.042);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(dist->sample(rng), 0.042);
  }
  EXPECT_DOUBLE_EQ(dist->stddev(), 0.0);
}

TEST(DistributionTest, ParetoInfiniteVarianceReported) {
  const auto dist = make_pareto(1.5, 0.01);
  EXPECT_TRUE(std::isinf(dist->stddev()));
  EXPECT_NEAR(dist->mean(), 1.5 * 0.01 / 0.5, 1e-12);
}

TEST(DistributionTest, ParetoSamplesRespectMinimum) {
  const auto dist = make_pareto(2.0, 0.01);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(dist->sample(rng), 0.01);
  }
}

TEST(DistributionTest, ParetoHeavyTailMeanStillConverges) {
  // alpha = 2.5 has finite mean but barely-finite variance; check the mean
  // only, with a looser tolerance than the main moment sweep.
  const auto dist = make_pareto(2.5, 0.01);
  Rng rng(55);
  Accumulator acc;
  for (int i = 0; i < 400000; ++i) acc.add(dist->sample(rng));
  EXPECT_NEAR(acc.mean(), dist->mean(), dist->mean() * 0.05);
}

TEST(DistributionTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(parse_distribution("exp"), InvariantError);
  EXPECT_THROW(parse_distribution("exp:"), InvariantError);
  EXPECT_THROW(parse_distribution("exp:1,2"), InvariantError);
  EXPECT_THROW(parse_distribution("unknown:1"), InvariantError);
  EXPECT_THROW(parse_distribution("uniform:1"), InvariantError);
  EXPECT_THROW(parse_distribution("lognormal:0.05"), InvariantError);
}

TEST(DistributionTest, ParseDescribeRoundTrip) {
  for (const char* spec :
       {"det:0.05", "exp:0.0222", "uniform:0.01,0.03", "pareto:2.5,0.01"}) {
    const auto dist = parse_distribution(spec);
    const auto reparsed = parse_distribution(dist->describe());
    EXPECT_DOUBLE_EQ(dist->mean(), reparsed->mean()) << spec;
  }
}

TEST(DistributionTest, InvalidParametersThrow) {
  EXPECT_THROW(make_exponential(0.0), InvariantError);
  EXPECT_THROW(make_exponential(-1.0), InvariantError);
  EXPECT_THROW(make_uniform(3.0, 1.0), InvariantError);
  EXPECT_THROW(make_lognormal_from_moments(-1.0, 0.5), InvariantError);
  EXPECT_THROW(make_gamma_from_moments(0.05, 0.0), InvariantError);
  EXPECT_THROW(make_pareto(0.9, 0.01), InvariantError);
  EXPECT_THROW(make_pareto(2.0, 0.0), InvariantError);
  EXPECT_THROW(make_shifted_exponential(-0.1, 0.02), InvariantError);
}

TEST(DistributionTest, LognormalHeavyTailOrdering) {
  // With equal means, higher declared stddev should produce a fatter upper
  // tail (larger p99).
  Rng rng_a(7);
  Rng rng_b(7);
  const auto narrow = make_lognormal_from_moments(0.05, 0.01);
  const auto wide = make_lognormal_from_moments(0.05, 0.15);
  double max_narrow = 0.0;
  double max_wide = 0.0;
  for (int i = 0; i < 50000; ++i) {
    max_narrow = std::max(max_narrow, narrow->sample(rng_a));
    max_wide = std::max(max_wide, wide->sample(rng_b));
  }
  EXPECT_GT(max_wide, max_narrow);
}

TEST(DistributionTest, SamplingIsDeterministicPerSeed) {
  const auto dist = parse_distribution("gamma:0.0222,0.01");
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist->sample(a), dist->sample(b));
  }
}

}  // namespace
}  // namespace finelb
