#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace finelb {
namespace {

Trace small_trace() {
  return Trace({{10 * kMillisecond, 5 * kMillisecond},
                {20 * kMillisecond, 15 * kMillisecond},
                {30 * kMillisecond, 25 * kMillisecond}},
               "unit");
}

TEST(TraceTest, StatsMatchHandComputation) {
  const TraceStats s = small_trace().stats();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.arrival_mean_ms, 20.0);
  EXPECT_DOUBLE_EQ(s.service_mean_ms, 15.0);
  EXPECT_DOUBLE_EQ(s.arrival_stddev_ms, 10.0);  // sample stddev of 10,20,30
  EXPECT_DOUBLE_EQ(s.service_stddev_ms, 10.0);
}

TEST(TraceTest, WriteReadRoundTrip) {
  const Trace original = small_trace();
  std::stringstream stream;
  original.write(stream);
  const Trace restored = Trace::read(stream);
  EXPECT_EQ(restored.records(), original.records());
  EXPECT_EQ(restored.name(), "unit");
}

TEST(TraceTest, ReadRejectsMissingHeader) {
  std::stringstream stream("10 5\n20 15\n");
  EXPECT_THROW(Trace::read(stream), InvariantError);
}

TEST(TraceTest, ReadRejectsMalformedLine) {
  std::stringstream stream("# finelb-trace v1\n10 abc\n");
  EXPECT_THROW(Trace::read(stream), InvariantError);
}

TEST(TraceTest, ReadSkipsBlankAndCommentLines) {
  std::stringstream stream(
      "# finelb-trace v1\n# name: from-file\n\n10 5\n\n20 15\n");
  const Trace t = Trace::read(stream);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(), "from-file");
}

TEST(TraceTest, SliceExtractsRange) {
  const Trace sliced = small_trace().slice(1, 2, "peak");
  ASSERT_EQ(sliced.size(), 2u);
  EXPECT_EQ(sliced.records()[0].arrival_interval, 20 * kMillisecond);
  EXPECT_EQ(sliced.name(), "peak");
}

TEST(TraceTest, SliceClampsCountAndValidatesStart) {
  EXPECT_EQ(small_trace().slice(2, 100).size(), 1u);
  EXPECT_EQ(small_trace().slice(3, 1).size(), 0u);
  EXPECT_THROW(small_trace().slice(4, 1), InvariantError);
}

TEST(TraceTest, ScaleArrivalsOnlyTouchesIntervals) {
  const Trace scaled = small_trace().scale_arrivals(0.5);
  ASSERT_EQ(scaled.size(), 3u);
  EXPECT_EQ(scaled.records()[0].arrival_interval, 5 * kMillisecond);
  EXPECT_EQ(scaled.records()[0].service_time, 5 * kMillisecond);
  EXPECT_EQ(scaled.records()[2].arrival_interval, 15 * kMillisecond);
  EXPECT_THROW(small_trace().scale_arrivals(0.0), InvariantError);
}

TEST(TraceTest, NegativeDurationsRejected) {
  EXPECT_THROW(Trace({{-1, 5}}), InvariantError);
  EXPECT_THROW(Trace({{1, -5}}), InvariantError);
}

TEST(TraceTest, SaveLoadThroughFilesystem) {
  const std::string path = ::testing::TempDir() + "/finelb_trace_test.trace";
  small_trace().save(path);
  const Trace loaded = Trace::load(path);
  EXPECT_EQ(loaded.records(), small_trace().records());
  EXPECT_THROW(Trace::load(path + ".missing"), InvariantError);
}

TEST(TraceTest, MicrosecondPrecisionPreservedOnDisk) {
  const Trace t({{1234 * kMicrosecond, 987 * kMicrosecond}}, "us");
  std::stringstream stream;
  t.write(stream);
  const Trace restored = Trace::read(stream);
  EXPECT_EQ(restored.records()[0].arrival_interval, 1234 * kMicrosecond);
  EXPECT_EQ(restored.records()[0].service_time, 987 * kMicrosecond);
}

}  // namespace
}  // namespace finelb
