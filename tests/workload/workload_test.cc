#include "workload/workload.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "stats/accumulator.h"
#include "workload/catalog.h"

namespace finelb {
namespace {

TEST(WorkloadTest, DistributionWorkloadMeans) {
  const Workload w = Workload::from_distributions(
      "test", make_exponential(0.1), make_exponential(0.05));
  EXPECT_DOUBLE_EQ(w.mean_interval_sec(), 0.1);
  EXPECT_DOUBLE_EQ(w.mean_service_sec(), 0.05);
  EXPECT_FALSE(w.is_trace());
  EXPECT_THROW(w.trace(), InvariantError);
}

TEST(WorkloadTest, ArrivalScaleForLoad) {
  // 50 ms service, 16 servers at 90%: aggregate interval must be
  // 0.05 / (0.9 * 16) sec. Base interval equals the service mean for the
  // Poisson/Exp catalog workload, so scale = 1 / (0.9 * 16).
  const Workload w = make_poisson_exp(0.05);
  EXPECT_NEAR(w.arrival_scale_for_load(0.9, 16), 1.0 / (0.9 * 16.0), 1e-12);
  EXPECT_THROW(w.arrival_scale_for_load(0.0, 16), InvariantError);
  EXPECT_THROW(w.arrival_scale_for_load(0.9, 0), InvariantError);
}

TEST(WorkloadTest, SourceHonoursArrivalScale) {
  const Workload w = make_poisson_exp(0.05);
  auto unscaled = w.make_source(1.0, 42);
  auto scaled = w.make_source(0.25, 42);
  Accumulator a;
  Accumulator b;
  for (int i = 0; i < 50000; ++i) {
    a.add(to_sec(unscaled->next().arrival_interval));
    b.add(to_sec(scaled->next().arrival_interval));
  }
  EXPECT_NEAR(b.mean() / a.mean(), 0.25, 0.02);
}

TEST(WorkloadTest, SourcesWithDifferentSeedsDiffer) {
  const Workload w = make_poisson_exp(0.05);
  auto s1 = w.make_source(1.0, 1);
  auto s2 = w.make_source(1.0, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1->next().service_time == s2->next().service_time) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(WorkloadTest, TraceSourceLoopsAndScales) {
  const Trace trace({{10 * kMillisecond, 1 * kMillisecond},
                     {20 * kMillisecond, 2 * kMillisecond}},
                    "loop");
  const Workload w = Workload::from_trace(trace);
  EXPECT_TRUE(w.is_trace());
  auto source = w.make_source(2.0, 7);
  // Drain more records than the trace holds: replay must wrap around.
  std::int64_t service_sum = 0;
  for (int i = 0; i < 4; ++i) {
    const TraceRecord rec = source->next();
    service_sum += rec.service_time;
    EXPECT_TRUE(rec.arrival_interval == 20 * kMillisecond ||
                rec.arrival_interval == 40 * kMillisecond)
        << "intervals must be doubled by the scale";
  }
  EXPECT_EQ(service_sum, 2 * (1 + 2) * kMillisecond);
}

TEST(WorkloadTest, TraceSourceSeedRandomizesOffset) {
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 100; ++i) {
    recs.push_back({kMillisecond, (i + 1) * kMicrosecond});
  }
  const Workload w = Workload::from_trace(Trace(recs, "offsets"));
  auto s1 = w.make_source(1.0, 1);
  auto s2 = w.make_source(1.0, 99);
  EXPECT_NE(s1->next().service_time, s2->next().service_time);
}

TEST(CatalogTest, SyntheticTraceMomentsMatchTable1) {
  // The headline Table 1 reproduction: synthesized traces must land on the
  // published moments within sampling tolerance.
  const Trace fine = synth_fine_grain_trace(200000, 1);
  const TraceStats fs = fine.stats();
  const TraceMoments fm = fine_grain_moments();
  EXPECT_NEAR(fs.service_mean_ms, fm.service_mean_ms,
              fm.service_mean_ms * 0.02);
  EXPECT_NEAR(fs.service_stddev_ms, fm.service_stddev_ms,
              fm.service_stddev_ms * 0.05);
  EXPECT_NEAR(fs.arrival_mean_ms, fm.arrival_mean_ms,
              fm.arrival_mean_ms * 0.02);
  EXPECT_NEAR(fs.arrival_stddev_ms, fm.arrival_stddev_ms,
              fm.arrival_stddev_ms * 0.08);

  const Trace medium = synth_medium_grain_trace(200000, 2);
  const TraceStats ms = medium.stats();
  const TraceMoments mm = medium_grain_moments();
  EXPECT_NEAR(ms.service_mean_ms, mm.service_mean_ms,
              mm.service_mean_ms * 0.03);
  EXPECT_NEAR(ms.service_stddev_ms, mm.service_stddev_ms,
              mm.service_stddev_ms * 0.10);
}

TEST(CatalogTest, FineGrainServiceHasSubExponentialVariance) {
  // Paper §1.1: the trace service-time distributions have lower variance
  // than an exponential (cv < 1) — true for the Fine-Grain trace.
  const TraceStats s = synth_fine_grain_trace(50000, 3).stats();
  EXPECT_LT(s.service_stddev_ms / s.service_mean_ms, 1.0);
}

TEST(CatalogTest, TracesAreDeterministicPerSeed) {
  const Trace a = synth_fine_grain_trace(100, 42);
  const Trace b = synth_fine_grain_trace(100, 42);
  EXPECT_EQ(a.records(), b.records());
  const Trace c = synth_fine_grain_trace(100, 43);
  EXPECT_NE(a.records(), c.records());
}

TEST(CatalogTest, WorkloadByName) {
  EXPECT_EQ(workload_by_name("poisson", 0.05).name(), "poisson-exp");
  EXPECT_EQ(workload_by_name("fine", 0.05, 1000, 1).name(), "fine-grain");
  EXPECT_EQ(workload_by_name("medium", 0.05, 1000, 1).name(), "medium-grain");
  EXPECT_THROW(workload_by_name("bogus"), InvariantError);
}

TEST(CatalogTest, PoissonExpUsesGivenServiceMean) {
  const Workload w = make_poisson_exp(0.0222);
  EXPECT_DOUBLE_EQ(w.mean_service_sec(), 0.0222);
  EXPECT_DOUBLE_EQ(w.mean_interval_sec(), 0.0222);
  EXPECT_THROW(make_poisson_exp(0.0), InvariantError);
}

}  // namespace
}  // namespace finelb
