// Tests for the simulator extensions beyond the paper's configurations:
// heterogeneous server speeds, planned outages, and memory-augmented
// polling.
#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"
#include "sim/config.h"
#include "workload/catalog.h"

namespace finelb::sim {
namespace {

const Workload& poisson50() {
  static const Workload w = make_poisson_exp(0.050);
  return w;
}

SimConfig base_config(PolicyConfig policy) {
  SimConfig config;
  config.servers = 8;
  config.clients = 4;
  config.policy = policy;
  config.load = 0.8;
  config.total_requests = 60'000;
  config.warmup_requests = 6'000;
  config.seed = 21;
  return config;
}

TEST(HeterogeneousTest, FastServersServeMoreUnderIdeal) {
  SimConfig config = base_config(PolicyConfig::ideal());
  config.server_speeds = {2.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_EQ(r.completed, config.total_requests);
  const std::int64_t fast = std::accumulate(
      r.per_server_served.begin(), r.per_server_served.begin() + 4, 0ll);
  const std::int64_t slow = std::accumulate(
      r.per_server_served.begin() + 4, r.per_server_served.end(), 0ll);
  // Queue-length balancing routes roughly in proportion to service rate.
  EXPECT_GT(fast, slow * 3 / 2);
}

TEST(HeterogeneousTest, LoadAwarePoliciesAbsorbSpeedSkew) {
  SimConfig config = base_config(PolicyConfig::random());
  config.server_speeds = {3.0, 3.0, 3.0, 3.0, 0.5, 0.5, 0.5, 0.5};
  const double random_ms =
      run_cluster_sim(config, poisson50()).mean_response_ms();
  config.policy = PolicyConfig::polling(2);
  const double polling_ms =
      run_cluster_sim(config, poisson50()).mean_response_ms();
  // Random keeps sending half the traffic to servers with 1/6 the
  // capacity; queue-length polling shifts it away. The gap should be much
  // larger than in the homogeneous case.
  EXPECT_LT(polling_ms, random_ms * 0.4);
}

TEST(HeterogeneousTest, HomogeneousSpeedsMatchDefault) {
  SimConfig config = base_config(PolicyConfig::polling(2));
  const double implicit = run_cluster_sim(config, poisson50()).mean_response_ms();
  config.server_speeds.assign(8, 1.0);
  const double explicit_speeds =
      run_cluster_sim(config, poisson50()).mean_response_ms();
  EXPECT_DOUBLE_EQ(implicit, explicit_speeds);
}

TEST(HeterogeneousTest, SpeedValidation) {
  SimConfig config = base_config(PolicyConfig::random());
  config.server_speeds = {1.0, 2.0};  // wrong size
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
  config.server_speeds.assign(8, 1.0);
  config.server_speeds[3] = 0.0;
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
}

TEST(OutageTest, AllRequestsStillComplete) {
  SimConfig config = base_config(PolicyConfig::polling(2));
  config.outages = {{0, 10 * kSecond, 20 * kSecond},
                    {1, 30 * kSecond, 10 * kSecond}};
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_EQ(r.completed, config.total_requests);
}

TEST(OutageTest, OutageHurtsAndLoadAwarenessLimitsTheDamage) {
  SimConfig config = base_config(PolicyConfig::random());
  const double healthy = run_cluster_sim(config, poisson50()).mean_response_ms();
  // One of eight servers is out for a long stretch mid-run.
  config.outages = {{0, 20 * kSecond, 60 * kSecond}};
  const double random_out =
      run_cluster_sim(config, poisson50()).mean_response_ms();
  EXPECT_GT(random_out, healthy * 1.3)
      << "random keeps feeding the paused server";

  config.policy = PolicyConfig::polling(3);
  const double polling_out =
      run_cluster_sim(config, poisson50()).mean_response_ms();
  EXPECT_LT(polling_out, random_out * 0.6)
      << "polling sees the paused server's growing queue and avoids it";
}

TEST(OutageTest, Validation) {
  SimConfig config = base_config(PolicyConfig::random());
  config.outages = {{99, 0, kSecond}};
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
  config.outages = {{0, 0, 0}};
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
}

TEST(PollMemoryTest, MemoryImprovesSmallPollSizes) {
  // Mitzenmacher: remembering the previous winner behaves like a free
  // extra (slightly stale) choice.
  SimConfig config = base_config(PolicyConfig::polling(1));
  config.load = 0.9;
  const double plain = run_cluster_sim(config, poisson50()).mean_response_ms();
  config.policy.poll_memory = true;
  const double with_memory =
      run_cluster_sim(config, poisson50()).mean_response_ms();
  EXPECT_LT(with_memory, plain * 0.85);
}

TEST(PollMemoryTest, NoExtraMessages) {
  SimConfig config = base_config(PolicyConfig::polling(2));
  config.total_requests = 10'000;
  config.warmup_requests = 1'000;
  const SimResult plain = run_cluster_sim(config, poisson50());
  config.policy.poll_memory = true;
  const SimResult with_memory = run_cluster_sim(config, poisson50());
  EXPECT_EQ(plain.messages, with_memory.messages)
      << "memory is a free candidate, not an extra poll";
  EXPECT_EQ(plain.polls_sent, with_memory.polls_sent);
}

TEST(PollMemoryTest, DescribeMentionsMemory) {
  PolicyConfig config = PolicyConfig::polling(2);
  config.poll_memory = true;
  EXPECT_EQ(config.describe(), "polling(2,memory)");
}

}  // namespace
}  // namespace finelb::sim
