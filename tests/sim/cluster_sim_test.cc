#include "sim/config.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "telemetry/decision.h"
#include "workload/catalog.h"

namespace finelb::sim {
namespace {

SimConfig base_config(PolicyConfig policy, double load = 0.9) {
  SimConfig config;
  config.servers = 16;
  config.clients = 6;
  config.policy = policy;
  config.load = load;
  config.total_requests = 60'000;
  config.warmup_requests = 6'000;
  config.seed = 3;
  return config;
}

const Workload& poisson50() {
  static const Workload w = make_poisson_exp(0.050);
  return w;
}

TEST(ClusterSimTest, AllRequestsComplete) {
  const SimResult r = run_cluster_sim(base_config(PolicyConfig::random()),
                                      poisson50());
  EXPECT_EQ(r.completed, 60'000);
  EXPECT_EQ(r.response_ms.count(), 60'000 - 6'000);
}

TEST(ClusterSimTest, UtilizationTracksOfferedLoad) {
  for (const double load : {0.5, 0.9}) {
    const SimResult r = run_cluster_sim(
        base_config(PolicyConfig::random(), load), poisson50());
    EXPECT_NEAR(r.utilization, load, 0.03) << "load=" << load;
  }
}

TEST(ClusterSimTest, PolicyOrderingAtHighLoad) {
  // The paper's core qualitative result: ideal < polling(2) << random.
  const double ideal =
      run_cluster_sim(base_config(PolicyConfig::ideal()), poisson50())
          .mean_response_ms();
  const double poll2 =
      run_cluster_sim(base_config(PolicyConfig::polling(2)), poisson50())
          .mean_response_ms();
  const double random =
      run_cluster_sim(base_config(PolicyConfig::random()), poisson50())
          .mean_response_ms();
  EXPECT_LT(ideal, poll2);
  EXPECT_LT(poll2, random);
  // Mitzenmacher: two choices is an *exponential* improvement; at 90% load
  // the gap is large.
  EXPECT_LT(poll2, random * 0.5);
}

TEST(ClusterSimTest, PollSizeTwoCapturesMostOfTheBenefit) {
  // Poll size 8 must not be dramatically better than 2 (paper Fig. 4), in a
  // simulator that does not charge for polls.
  const double poll2 =
      run_cluster_sim(base_config(PolicyConfig::polling(2)), poisson50())
          .mean_response_ms();
  const double poll8 =
      run_cluster_sim(base_config(PolicyConfig::polling(8)), poisson50())
          .mean_response_ms();
  EXPECT_LT(poll8, poll2);               // more information still helps...
  EXPECT_GT(poll8, poll2 * 0.55);        // ...but not by much
}

TEST(ClusterSimTest, PollAccountingIsConsistent) {
  SimConfig config = base_config(PolicyConfig::polling(3));
  config.total_requests = 10'000;
  config.warmup_requests = 1'000;
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_EQ(r.polls_sent, 3 * 10'000);
  EXPECT_EQ(r.polls_discarded, 0);  // no discard timeout configured
  // Messages: per request 3 inquiries + 3 replies + request + response.
  EXPECT_EQ(r.messages, 10'000 * (3 + 3 + 1 + 1));
  EXPECT_GT(r.poll_time_ms.mean(), 0.0);
}

TEST(ClusterSimTest, DiscardTimeoutDropsSlowReplies) {
  SimConfig config = base_config(PolicyConfig::polling(3, from_us(200)));
  // Make replies slower than the discard deadline for busy servers.
  config.network.poll_reply_cpu = from_us(100);
  config.network.poll_reply_scales_with_queue = true;
  config.total_requests = 10'000;
  config.warmup_requests = 1'000;
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_GT(r.polls_discarded, 0);
  EXPECT_EQ(r.completed, 10'000);
  // Poll time is now bounded by the discard deadline (plus epsilon).
  EXPECT_LE(r.poll_time_ms.max(), to_ms(from_us(200)) + 0.001);
}

TEST(ClusterSimTest, RoundRobinBeatsRandomUnderPoissonExp) {
  // Round-robin spaces arrivals per server, cutting arrival variance.
  const double rr =
      run_cluster_sim(base_config(PolicyConfig::round_robin()), poisson50())
          .mean_response_ms();
  const double random =
      run_cluster_sim(base_config(PolicyConfig::random()), poisson50())
          .mean_response_ms();
  EXPECT_LT(rr, random);
}

TEST(ClusterSimTest, BroadcastDegradesWithStalerInformation) {
  const double fresh =
      run_cluster_sim(base_config(PolicyConfig::broadcast(from_ms(2))),
                      poisson50())
          .mean_response_ms();
  const double stale =
      run_cluster_sim(base_config(PolicyConfig::broadcast(from_ms(500))),
                      poisson50())
          .mean_response_ms();
  EXPECT_GT(stale, fresh * 2.0)
      << "stale broadcast info must hurt badly at 90% load";
}

TEST(ClusterSimTest, BroadcastMessageCountScalesWithClients) {
  SimConfig config = base_config(PolicyConfig::broadcast(from_ms(100)));
  config.total_requests = 10'000;
  config.warmup_requests = 1'000;
  const SimResult r6 = run_cluster_sim(config, poisson50());
  config.clients = 3;
  const SimResult r3 = run_cluster_sim(config, poisson50());
  // §2.4: broadcast messages scale with the number of listening clients.
  EXPECT_GT(r6.messages - 2 * 10'000, (r3.messages - 2 * 10'000) * 3 / 2);
  EXPECT_GT(r6.broadcasts_sent, 0);
}

TEST(ClusterSimTest, IdealObservesBalancedQueues) {
  const SimResult r =
      run_cluster_sim(base_config(PolicyConfig::ideal()), poisson50());
  const SimResult random =
      run_cluster_sim(base_config(PolicyConfig::random()), poisson50());
  EXPECT_LT(r.queue_on_arrival.mean(), random.queue_on_arrival.mean());
}

TEST(ClusterSimTest, TraceWorkloadsRun) {
  const Workload fine = make_fine_grain(20'000, 5);
  SimConfig config = base_config(PolicyConfig::polling(2), 0.7);
  config.total_requests = 30'000;
  config.warmup_requests = 3'000;
  const SimResult r = run_cluster_sim(config, fine);
  EXPECT_EQ(r.completed, 30'000);
  EXPECT_GT(r.mean_response_ms(), to_ms(from_sec(0.0222)) * 0.9);
}

TEST(ClusterSimTest, ConfigValidation) {
  SimConfig config = base_config(PolicyConfig::random());
  config.load = 1.5;
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
  config.load = 0.9;
  config.servers = 0;
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
  config.servers = 16;
  config.warmup_requests = config.total_requests;
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
}

TEST(ClusterSimTest, DecisionAuditingDoesNotPerturbTheRun) {
  // Attaching a decision sink must not change a seeded run: the recorded
  // selection calls consume the RNG exactly like the unrecorded ones.
  SimConfig config = base_config(PolicyConfig::polling(3), 0.7);
  config.total_requests = 10'000;
  config.warmup_requests = 1'000;
  const SimResult bare = run_cluster_sim(config, poisson50());

  telemetry::DecisionRing ring(1024, /*sample_period=*/1);
  config.decision_sink = ring.sink();
  const SimResult audited = run_cluster_sim(config, poisson50());

  EXPECT_EQ(audited.completed, bare.completed);
  EXPECT_DOUBLE_EQ(audited.response_ms.mean(), bare.response_ms.mean());
  EXPECT_EQ(audited.polls_sent, bare.polls_sent);
  EXPECT_EQ(audited.messages, bare.messages);
  // The exact regret accounting is sink-independent (post-warmup only).
  EXPECT_EQ(audited.decisions, bare.decisions);
  EXPECT_EQ(audited.decision_mistakes, bare.decision_mistakes);
  EXPECT_EQ(audited.decisions,
            config.total_requests - config.warmup_requests);
  if (telemetry::kEnabled) {
    // The ring saw the tail of the run's decisions, polled set included.
    const auto records = ring.snapshot();
    ASSERT_EQ(records.size(), ring.capacity());
    for (const auto& rec : records) {
      EXPECT_GE(rec.chosen, 0);
      EXPECT_LT(rec.chosen, config.servers);
      if (!rec.blind_fallback) {
        EXPECT_GT(rec.polled_count, 0);
      }
    }
  }
}

TEST(ClusterSimTest, ResponseTimeIncludesNetworkTransit) {
  // At trivial load the mean response must be at least service + 2 legs.
  SimConfig config = base_config(PolicyConfig::random(), 0.05);
  config.total_requests = 5'000;
  config.warmup_requests = 500;
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_GT(r.mean_response_ms(), 50.0 + 2 * to_ms(from_us(129)) - 1.0);
}

}  // namespace
}  // namespace finelb::sim
