// SweepRunner determinism contract (bench/bench_util.h).
//
// The parallel sweep path is only admissible because its output is
// byte-identical to the sequential sweep: results come back in submission
// order and every task owns its RNG stream via a seed derived from the
// submission index, never from thread identity. These tests pin that
// contract, including on real cluster simulations.

#include "bench_util.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/config.h"
#include "workload/catalog.h"

namespace finelb::bench {
namespace {

TEST(DeriveSeedTest, DeterministicAndWellSpread) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 4; ++base) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seen.insert(derive_seed(base, index));
    }
  }
  // 4 bases x 64 indices must not collide (a collision would silently
  // correlate two sweep points).
  EXPECT_EQ(seen.size(), 256u);
}

TEST(SweepRunnerTest, ResultsComeBackInSubmissionOrder) {
  SweepRunner<int> runner(4);
  // Reverse-staggered sleeps: late-submitted tasks finish first, so any
  // completion-order leak into the result vector shows up immediately.
  for (int i = 0; i < 16; ++i) {
    runner.submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds((16 - i) % 5));
      return i * i;
    });
  }
  EXPECT_EQ(runner.pending(), 16u);
  const std::vector<int> results = runner.run();
  ASSERT_EQ(results.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
  }
  // The queue is cleared so the runner can take a second wave.
  EXPECT_EQ(runner.pending(), 0u);
  runner.submit([] { return 7; });
  EXPECT_EQ(runner.run(), std::vector<int>{7});
}

TEST(SweepRunnerTest, LowestIndexExceptionWins) {
  SweepRunner<int> runner(4);
  runner.submit([] { return 0; });
  runner.submit([]() -> int { throw std::runtime_error("first"); });
  runner.submit([] { return 2; });
  runner.submit([]() -> int { throw std::runtime_error("second"); });
  try {
    runner.run();
    FAIL() << "run() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(SweepRunnerTest, ParallelClusterSweepIsBitIdenticalToSerial) {
  // A miniature fig-style sweep: two policies across three loads, each
  // point seeded from its submission row. Run it through a 4-thread pool
  // and through the serial runner; every statistic must match exactly —
  // not approximately — because each simulation is fully self-contained.
  const Workload workload = make_poisson_exp(0.050);
  const std::vector<double> loads = {0.5, 0.7, 0.9};
  const std::vector<PolicyConfig> policies = {PolicyConfig::random(),
                                              PolicyConfig::polling(3)};

  const auto sweep = [&](SweepRunner<sim::SimResult> runner) {
    std::uint64_t row = 0;
    for (const double load : loads) {
      const std::uint64_t run_seed = derive_seed(42, row++);
      for (const PolicyConfig& policy : policies) {
        runner.submit([&workload, policy, load, run_seed] {
          sim::SimConfig config;
          config.servers = 4;
          config.clients = 2;
          config.policy = policy;
          config.load = load;
          config.total_requests = 4000;
          config.warmup_requests = 400;
          config.seed = run_seed;
          return sim::run_cluster_sim(config, workload);
        });
      }
    }
    return runner.run();
  };

  const auto parallel = sweep(SweepRunner<sim::SimResult>(4));
  const auto serial = sweep(SweepRunner<sim::SimResult>::serial());

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].response_ms.count(), serial[i].response_ms.count());
    EXPECT_EQ(parallel[i].mean_response_ms(), serial[i].mean_response_ms());
    EXPECT_EQ(parallel[i].response_ms.max(), serial[i].response_ms.max());
    EXPECT_EQ(parallel[i].utilization, serial[i].utilization);
    EXPECT_EQ(parallel[i].polls_sent, serial[i].polls_sent);
    EXPECT_EQ(parallel[i].per_server_served, serial[i].per_server_served);
  }
}

}  // namespace
}  // namespace finelb::bench
