#include "sim/inaccuracy.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "stats/queueing.h"
#include "workload/catalog.h"

namespace finelb::sim {
namespace {

TEST(QueueTrajectoryTest, ValueAtStepSemantics) {
  QueueTrajectory t;
  t.append(10, 1);
  t.append(20, 2);
  t.append(30, 1);
  EXPECT_EQ(t.value_at(5), 0);   // before first step
  EXPECT_EQ(t.value_at(10), 1);  // right-continuous at the step
  EXPECT_EQ(t.value_at(15), 1);
  EXPECT_EQ(t.value_at(20), 2);
  EXPECT_EQ(t.value_at(25), 2);
  EXPECT_EQ(t.value_at(100), 1);
  EXPECT_EQ(t.start(), 10);
  EXPECT_EQ(t.end(), 30);
}

TEST(QueueTrajectoryTest, RejectsDisorderAndNegatives) {
  QueueTrajectory t;
  t.append(10, 1);
  EXPECT_THROW(t.append(5, 2), InvariantError);
  EXPECT_THROW(t.append(20, -1), InvariantError);
  QueueTrajectory empty;
  EXPECT_THROW(empty.start(), InvariantError);
}

TEST(TrajectoryRecordingTest, StepsAlternateByOne) {
  const Workload w = make_poisson_exp(0.050);
  const QueueTrajectory t = record_single_server_trajectory(w, 0.5, 2000, 1);
  // Every arrival/departure changes the queue by exactly +-1; with 2000
  // requests there are 4000 steps.
  EXPECT_EQ(t.steps(), 4000u);
}

TEST(InaccuracyTest, ZeroDelayMeansZeroInaccuracy) {
  const Workload w = make_poisson_exp(0.050);
  const QueueTrajectory t = record_single_server_trajectory(w, 0.9, 50'000, 2);
  EXPECT_DOUBLE_EQ(measure_inaccuracy(t, 0, 10'000, 3), 0.0);
}

TEST(InaccuracyTest, GrowsWithDelayAndSaturatesAtEquationOne) {
  // The Figure 2 property: inaccuracy increases with delay and approaches
  // 2 rho / (1 - rho^2) for Poisson/Exp.
  const Workload w = make_poisson_exp(0.050);
  for (const double rho : {0.5, 0.9}) {
    const auto points = inaccuracy_sweep(w, rho, {0.1, 1.0, 4.0, 20.0, 300.0},
                                         400'000, 40'000, 4);
    const double bound = queueing::stale_index_inaccuracy_bound(rho);
    double prev = 0.0;
    for (const auto& p : points) {
      EXPECT_GE(p.inaccuracy, prev * 0.9)
          << "roughly monotone, rho=" << rho << " delay=" << p.delay_over_service;
      EXPECT_LT(p.inaccuracy, bound * 1.15)
          << "must stay below Equation (1), rho=" << rho;
      prev = p.inaccuracy;
    }
    // Large delays approach the bound.
    EXPECT_GT(points.back().inaccuracy, bound * 0.7) << "rho=" << rho;
    // Small delays are far below it.
    EXPECT_LT(points.front().inaccuracy, bound * 0.5) << "rho=" << rho;
  }
}

TEST(InaccuracyTest, BusierServerIsLessAccurate) {
  const Workload w = make_poisson_exp(0.050);
  const auto at50 = inaccuracy_sweep(w, 0.5, {10.0}, 200'000, 20'000, 5);
  const auto at90 = inaccuracy_sweep(w, 0.9, {10.0}, 200'000, 20'000, 5);
  EXPECT_GT(at90[0].inaccuracy, at50[0].inaccuracy * 1.5);
}

TEST(InaccuracyTest, DelayTooLargeForTrajectoryThrows) {
  const Workload w = make_poisson_exp(0.050);
  const QueueTrajectory t = record_single_server_trajectory(w, 0.5, 100, 6);
  EXPECT_THROW(
      measure_inaccuracy(t, t.end() - t.start() + kSecond, 100, 7),
      InvariantError);
}

}  // namespace
}  // namespace finelb::sim
