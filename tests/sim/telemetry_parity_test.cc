// The simulator publishes its results under the same metric names as the
// prototype node registries, so dashboards and analysis scripts can compare
// a sim sweep against a live cluster without a translation table. These
// tests pin that name parity and the field mapping.
#include "sim/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sim/config.h"
#include "telemetry/export.h"
#include "workload/catalog.h"

namespace finelb::sim {
namespace {

SimResult small_run() {
  SimConfig config;
  config.servers = 8;
  config.clients = 2;
  config.policy = PolicyConfig::polling(3);
  config.load = 0.7;
  config.total_requests = 4'000;
  config.warmup_requests = 400;
  config.seed = 11;
  return run_cluster_sim(config, make_poisson_exp(0.050));
}

std::int64_t counter(const telemetry::MetricsSnapshot& snap,
                     const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "missing counter " << name;
  return -1;
}

TEST(SimTelemetryParityTest, CountersMirrorSimResult) {
  const SimResult r = small_run();
  const telemetry::MetricsSnapshot snap =
      to_metrics_snapshot(r, "sim.polling3");
  EXPECT_EQ(snap.node, "sim.polling3");
  EXPECT_EQ(counter(snap, "requests_completed"), r.completed);
  EXPECT_EQ(counter(snap, "response_timeouts"), r.failed);
  EXPECT_EQ(counter(snap, "polls_sent"), r.polls_sent);
  EXPECT_EQ(counter(snap, "polls_discarded"), r.polls_discarded);
  EXPECT_EQ(counter(snap, "fallback_dispatches"), r.poll_fallbacks);
  EXPECT_EQ(counter(snap, "broadcasts_sent"), r.broadcasts_sent);
  EXPECT_EQ(counter(snap, "messages_total"), r.messages);
  EXPECT_EQ(counter(snap, "drops_injected"), r.drops_injected);
  // A polling run really polls; the parity is only interesting non-trivially.
  EXPECT_GT(r.polls_sent, 0);
  EXPECT_GT(r.completed, 0);
}

TEST(SimTelemetryParityTest, DecisionQualityCountersShareNames) {
  const SimResult r = small_run();
  const telemetry::MetricsSnapshot snap = to_metrics_snapshot(r, "sim.x");
  // The decision observatory publishes under the same names the prototype's
  // append_decision_metrics emits; the sim side is the exact accounting.
  EXPECT_EQ(counter(snap, "decisions_total"), r.decisions);
  EXPECT_EQ(counter(snap, "decision_mistakes_total"), r.decision_mistakes);
  EXPECT_EQ(counter(snap, "decision_blind_fallbacks"),
            r.decision_blind_fallbacks);
  EXPECT_EQ(counter(snap, "decision_regret_total"), r.decision_regret_total);
  const auto value = [&](const std::string& name) -> double {
    for (const auto& [key, v] : snap.values) {
      if (key == name) return v;
    }
    ADD_FAILURE() << "missing value " << name;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value("decision_mistake_rate"), r.decision_mistake_rate());
  EXPECT_DOUBLE_EQ(value("decision_regret_mean"), r.decision_mean_regret());
  // A polling run at 70% load makes decisions, and not all are perfect.
  EXPECT_GT(r.decisions, 0);
  EXPECT_GT(r.decision_mistakes, 0);
  EXPECT_GE(r.decisions, r.decision_mistakes);
}

TEST(SimTelemetryParityTest, HistogramSummarizesResponseDistribution) {
  const SimResult r = small_run();
  const telemetry::MetricsSnapshot snap = to_metrics_snapshot(r, "sim.x");
  ASSERT_EQ(snap.histograms.size(), 1u);
  const telemetry::HistogramSnapshot& hist = snap.histograms.front();
  EXPECT_EQ(hist.name, "response_time_ms");
  EXPECT_EQ(hist.count, r.response_hist_ms.count());
  EXPECT_DOUBLE_EQ(hist.mean, r.response_ms.mean());
  EXPECT_DOUBLE_EQ(hist.p50, r.response_hist_ms.p50());
  EXPECT_DOUBLE_EQ(hist.p99, r.response_hist_ms.p99());
  EXPECT_LE(hist.p50, hist.p99);
  EXPECT_GT(hist.count, 0);
}

TEST(SimTelemetryParityTest, JsonCarriesPrototypeMetricNames) {
  const SimResult r = small_run();
  const std::string json = to_stats_json(r, "sim.polling3");
  // The acceptance surface an operator greps for, shared with the
  // prototype's STATS_REPLY documents.
  for (const char* key :
       {"\"node\":\"sim.polling3\"", "\"polls_sent\"", "\"polls_discarded\"",
        "\"response_time_ms\"", "\"utilization\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace finelb::sim
