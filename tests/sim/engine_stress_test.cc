// Large-scale ordering stress for the calendar-rung engine.
//
// The engine promises pop order bit-identical to a plain binary heap over
// the strict total order (time, seq), where seq is assigned in scheduling
// order. This test runs ~1e7 events through workloads chosen to exercise
// every structural path — staging-buffer rebuilds, mid-drain bucket-arena
// appends, far-heap overflow, rung retirement and re-span, heavy same-time
// collisions — while mirroring every schedule into a reference
// std::priority_queue keyed by the same (time, seq) pairs. Each callback
// pops the reference top and checks it matches its own identity; mismatches
// are counted (not asserted per event) so a failure reports once instead of
// producing 1e7 assertion lines.

#include "sim/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace finelb::sim {
namespace {

using Key = std::pair<SimTime, std::uint64_t>;
using ReferenceQueue =
    std::priority_queue<Key, std::vector<Key>, std::greater<Key>>;

// Shared mutable state for one stress run. The engine owns closures that
// capture a pointer to this; keeping it in one struct keeps those closures
// small enough for the engine's inline slot storage.
struct Mirror {
  ReferenceQueue reference;
  std::uint64_t next_seq = 0;  // mirrors the engine's internal seq counter
  std::int64_t fired = 0;
  std::int64_t mismatches = 0;

  void check(SimTime time, std::uint64_t seq) {
    ++fired;
    if (reference.empty() || reference.top() != Key{time, seq}) {
      ++mismatches;
      if (!reference.empty()) reference.pop();
      return;
    }
    reference.pop();
  }
};

// Schedules one self-checking event and mirrors it into the reference
// queue. Must be called in the same order as the engine assigns seq — i.e.
// immediately around each schedule_at, never reordered.
template <class Extra>
void schedule_checked(Engine& engine, Mirror& mirror, SimTime t,
                      Extra&& extra) {
  const std::uint64_t seq = mirror.next_seq++;
  mirror.reference.emplace(t, seq);
  engine.schedule_at(t, [&mirror, t, seq, extra] {
    mirror.check(t, seq);
    extra(t);
  });
}

TEST(EngineStressTest, TenMillionEventsMatchReferenceHeapOrder) {
  Engine engine;
  Mirror mirror;
  Rng rng(0xfeedfaceULL);

  constexpr std::int64_t kTotal = 10'000'000;
  std::int64_t scheduled = 0;

  // Each fired event reschedules a follow-up until the budget runs out, so
  // the outstanding set stays at a steady plateau (the engine's designed
  // operating mode) rather than draining monotonically. Horizons mix four
  // regimes per draw:
  //   * same-time (t == now): hits the current active bucket mid-drain;
  //   * near (rung-width): scattered/appended rung buckets;
  //   * far (beyond the rung span): the 4-ary overflow heap;
  //   * clustered (t == now + 1): heavy collisions in one bucket.
  std::function<void(SimTime)> chain = [&](SimTime now) {
    if (scheduled >= kTotal) return;
    ++scheduled;
    const std::uint32_t regime = rng() & 3u;
    SimTime t = now;
    switch (regime) {
      case 0: break;  // same-time reschedule
      case 1: t = now + 1; break;
      case 2: t = now + 1 + static_cast<SimTime>(rng() & 0xfff); break;
      default:
        t = now + 1 + static_cast<SimTime>(rng() & 0xffffff);
        break;
    }
    schedule_checked(engine, mirror, t, chain);
  };

  // Seed plateau: a bursty initial population, including same-time clumps,
  // goes through the idle-staging scatter path.
  constexpr int kSeedEvents = 4096;
  for (int i = 0; i < kSeedEvents; ++i) {
    ++scheduled;
    const SimTime t = static_cast<SimTime>(rng() & 0xffff);
    schedule_checked(engine, mirror, t, chain);
  }

  engine.run();

  EXPECT_EQ(mirror.mismatches, 0);
  EXPECT_EQ(mirror.fired, scheduled);
  EXPECT_GE(mirror.fired, kTotal);
  EXPECT_TRUE(mirror.reference.empty());
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.events_processed(),
            static_cast<std::uint64_t>(mirror.fired));
}

TEST(EngineStressTest, InterleavedSameTimeBurstsKeepScheduleOrder) {
  // Dense same-time interleaving across two alternating timestamps, with
  // callbacks scheduling more work at *both* times mid-drain. Exercises the
  // active-bucket heap and the bucket-arena append path under collision
  // pressure far beyond what the cluster model produces.
  Engine engine;
  Mirror mirror;

  constexpr int kWaves = 200;
  constexpr int kPerWave = 64;
  std::int64_t budget = 400'000;

  std::function<void(SimTime)> burst = [&](SimTime now) {
    if (budget <= 0) return;
    for (int i = 0; i < 3 && budget > 0; ++i) {
      --budget;
      // Alternate between re-hitting the draining bucket and the next one.
      const SimTime t = now + static_cast<SimTime>(i & 1);
      schedule_checked(engine, mirror, t, burst);
    }
  };

  for (int wave = 0; wave < kWaves; ++wave) {
    for (int i = 0; i < kPerWave; ++i) {
      --budget;
      schedule_checked(engine, mirror, static_cast<SimTime>(wave), burst);
    }
  }

  engine.run();

  EXPECT_EQ(mirror.mismatches, 0);
  EXPECT_TRUE(mirror.reference.empty());
  EXPECT_TRUE(engine.empty());
}

}  // namespace
}  // namespace finelb::sim
