// Tests for the simulator's fault model (sim/config.h SimFaultModel):
// message loss, server crashes/restarts, failure accounting, determinism,
// and the guarantee that a disabled fault model leaves the simulation
// exactly as it was.
#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/config.h"
#include "workload/catalog.h"

namespace finelb::sim {
namespace {

const Workload& poisson50() {
  static const Workload w = make_poisson_exp(0.050);
  return w;
}

SimConfig base_config(PolicyConfig policy) {
  SimConfig config;
  config.servers = 8;
  config.clients = 4;
  config.policy = policy;
  config.load = 0.8;
  config.total_requests = 60'000;
  config.warmup_requests = 6'000;
  config.seed = 33;
  return config;
}

TEST(FaultModelTest, DisabledModelChangesNothing) {
  SimConfig config = base_config(PolicyConfig::polling(3));
  const SimResult plain = run_cluster_sim(config, poisson50());
  // Tuning knobs that only matter when faults fire must not perturb a
  // fault-free run: the fault RNG stream is split only when enabled.
  config.faults.response_timeout = 17 * kSecond;
  config.faults.max_poll_wait = from_ms(3);
  const SimResult tuned = run_cluster_sim(config, poisson50());
  EXPECT_DOUBLE_EQ(plain.mean_response_ms(), tuned.mean_response_ms());
  EXPECT_EQ(plain.messages, tuned.messages);
  EXPECT_EQ(plain.completed, tuned.completed);
  EXPECT_EQ(plain.failed, 0);
  EXPECT_EQ(plain.drops_injected, 0);
  EXPECT_EQ(plain.poll_fallbacks, 0);
}

TEST(FaultModelTest, EveryAccessResolvesUnderLoss) {
  SimConfig config = base_config(PolicyConfig::polling(3));
  config.faults.msg_loss_prob = 0.10;
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_EQ(r.completed + r.failed, config.total_requests)
      << "every access must end as completed or failed";
  EXPECT_GT(r.drops_injected, 0);
  EXPECT_GT(r.failed, 0) << "10% per-leg loss must eat some requests";
  // Lost requests/responses fail, but the vast majority still complete.
  EXPECT_LT(r.failed, config.total_requests / 4);
}

TEST(FaultModelTest, LossTriggersPollFallbacks) {
  SimConfig config = base_config(PolicyConfig::polling(2));
  // Heavy loss makes all-inquiries-lost rounds likely; the backstop
  // deadline must then dispatch blind instead of stalling the access.
  config.faults.msg_loss_prob = 0.4;
  config.total_requests = 20'000;
  config.warmup_requests = 2'000;
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_EQ(r.completed + r.failed, config.total_requests);
  EXPECT_GT(r.poll_fallbacks, 0);
}

TEST(FaultModelTest, LossDegradesButDoesNotBreakPolling) {
  SimConfig config = base_config(PolicyConfig::polling(3));
  const double clean = run_cluster_sim(config, poisson50()).mean_response_ms();
  config.faults.msg_loss_prob = 0.10;
  const SimResult lossy = run_cluster_sim(config, poisson50());
  // Lost polls and 10 ms backstop waits push the mean up, but the policy
  // keeps functioning (no runaway queues).
  EXPECT_LT(lossy.mean_response_ms(), clean * 20.0);
}

TEST(FaultModelTest, CrashFailsInFlightWork) {
  SimConfig config = base_config(PolicyConfig::random());
  config.faults.crashes = {{0, 20 * kSecond, -1}};  // no restart
  const SimResult r = run_cluster_sim(config, poisson50());
  EXPECT_EQ(r.completed + r.failed, config.total_requests);
  EXPECT_GT(r.failed, 0) << "random keeps dispatching to the dead server";
}

TEST(FaultModelTest, PollingRoutesAroundACrashedServer) {
  SimConfig config = base_config(PolicyConfig::random());
  config.faults.crashes = {{0, 20 * kSecond, -1}};
  const SimResult random_r = run_cluster_sim(config, poisson50());
  config.policy = PolicyConfig::polling(3);
  const SimResult polling_r = run_cluster_sim(config, poisson50());
  // A crashed server answers no inquiries, so poll rounds dispatch to live
  // servers; only accesses that polled exclusively the dead server (or lost
  // their round to its silence) can fail.
  EXPECT_LT(polling_r.failed, random_r.failed / 2);
}

TEST(FaultModelTest, RestartRestoresCapacity) {
  SimConfig config = base_config(PolicyConfig::random());
  config.faults.crashes = {{0, 20 * kSecond, -1}};
  const SimResult dead = run_cluster_sim(config, poisson50());
  config.faults.crashes = {{0, 20 * kSecond, 30 * kSecond}};
  const SimResult restarted = run_cluster_sim(config, poisson50());
  EXPECT_LT(restarted.failed, dead.failed)
      << "a restarted server stops eating dispatched requests";
  EXPECT_EQ(restarted.completed + restarted.failed, config.total_requests);
}

TEST(FaultModelTest, SameSeedSameFaultSchedule) {
  SimConfig config = base_config(PolicyConfig::polling(2));
  config.faults.msg_loss_prob = 0.15;
  config.faults.crashes = {{2, 15 * kSecond, 40 * kSecond}};
  const SimResult a = run_cluster_sim(config, poisson50());
  const SimResult b = run_cluster_sim(config, poisson50());
  EXPECT_DOUBLE_EQ(a.mean_response_ms(), b.mean_response_ms());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.drops_injected, b.drops_injected);
  EXPECT_EQ(a.poll_fallbacks, b.poll_fallbacks);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(FaultModelTest, Validation) {
  SimConfig config = base_config(PolicyConfig::random());
  config.faults.msg_loss_prob = 1.0;  // would lose every message forever
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
  config.faults.msg_loss_prob = 0.0;
  config.faults.crashes = {{99, kSecond, -1}};
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
  config.faults.crashes = {{0, 10 * kSecond, 5 * kSecond}};  // restart < crash
  EXPECT_THROW(run_cluster_sim(config, poisson50()), InvariantError);
}

}  // namespace
}  // namespace finelb::sim
