#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace finelb::sim {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, ProcessesEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(EngineTest, SameTimeEventsFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EngineTest, EventsCanScheduleMoreEvents) {
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) engine.schedule_after(10, chain);
  };
  engine.schedule_at(0, chain);
  engine.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), 40);
}

TEST(EngineTest, SchedulingIntoThePastThrows) {
  Engine engine;
  engine.schedule_at(100, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(50, [] {}), InvariantError);
  EXPECT_THROW(engine.schedule_after(-1, [] {}), InvariantError);
}

TEST(EngineTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine engine;
  std::vector<SimTime> fired;
  engine.schedule_at(10, [&] { fired.push_back(10); });
  engine.schedule_at(20, [&] { fired.push_back(20); });
  engine.schedule_at(30, [&] { fired.push_back(30); });
  engine.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(engine.now(), 20);
  engine.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(EngineTest, RunUntilWithEmptyQueueAdvancesClock) {
  Engine engine;
  engine.run_until(500);
  EXPECT_EQ(engine.now(), 500);
  EXPECT_THROW(engine.run_until(400), InvariantError);
}

TEST(EngineTest, StopHaltsProcessing) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(10, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(20, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.empty());
  engine.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, NowVisibleInsideEvents) {
  Engine engine;
  SimTime seen = -1;
  engine.schedule_at(123, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_EQ(seen, 123);
}

TEST(EngineTest, LargeEventCount) {
  Engine engine;
  std::int64_t sum = 0;
  for (int i = 0; i < 100000; ++i) {
    engine.schedule_at(i % 997, [&sum] { ++sum; });
  }
  engine.run();
  EXPECT_EQ(sum, 100000);
}

}  // namespace
}  // namespace finelb::sim
