// Validates the simulator against closed-form queueing theory. A simulator
// that reproduces M/M/1 and M/G/1 exactly is the foundation every figure in
// the paper's §2 rests on.
#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/inaccuracy.h"
#include "stats/queueing.h"
#include "workload/catalog.h"

namespace finelb::sim {
namespace {

SimConfig single_server_config(double load) {
  SimConfig config;
  config.servers = 1;
  config.clients = 1;
  config.policy = PolicyConfig::random();  // one server: policy irrelevant
  config.load = load;
  // Zero out messaging latency so the measurement is pure queueing.
  config.network.request_oneway = 0;
  config.total_requests = 400'000;
  config.warmup_requests = 40'000;
  config.seed = 7;
  return config;
}

class Mm1ResponseTime : public ::testing::TestWithParam<double> {};

TEST_P(Mm1ResponseTime, MatchesTheoryWithinFivePercent) {
  const double rho = GetParam();
  const Workload workload = make_poisson_exp(0.050);
  const SimResult result =
      run_cluster_sim(single_server_config(rho), workload);
  const double expected_ms =
      queueing::mm1_mean_response_time(rho, 0.050) * 1e3;
  EXPECT_NEAR(result.mean_response_ms(), expected_ms, expected_ms * 0.06)
      << "rho=" << rho;
  EXPECT_NEAR(result.utilization, rho, 0.02);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, Mm1ResponseTime,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(Mg1ValidationTest, GammaServiceMatchesPollaczekKhinchine) {
  // Fine-Grain-like service: gamma with cv 10/22.2 (= 0.45).
  const double mean_s = 0.0222;
  const double cv = 10.0 / 22.2;
  const Workload workload = Workload::from_distributions(
      "mg1", make_exponential(mean_s),
      make_gamma_from_moments(mean_s, mean_s * cv));
  const double rho = 0.8;
  const SimResult result =
      run_cluster_sim(single_server_config(rho), workload);
  const double expected_ms =
      queueing::mg1_mean_response_time(rho, mean_s, cv) * 1e3;
  EXPECT_NEAR(result.mean_response_ms(), expected_ms, expected_ms * 0.06);
}

TEST(Mg1ValidationTest, DeterministicServiceMatchesMd1) {
  const double mean_s = 0.020;
  const Workload workload = Workload::from_distributions(
      "md1", make_exponential(mean_s), make_deterministic(mean_s));
  const double rho = 0.7;
  const SimResult result =
      run_cluster_sim(single_server_config(rho), workload);
  const double expected_ms =
      queueing::mg1_mean_response_time(rho, mean_s, 0.0) * 1e3;
  EXPECT_NEAR(result.mean_response_ms(), expected_ms, expected_ms * 0.06);
}

TEST(Mm1ValidationTest, QueueLengthDistributionIsGeometric) {
  const double rho = 0.6;
  const Workload workload = make_poisson_exp(0.050);
  const QueueTrajectory trajectory =
      record_single_server_trajectory(workload, rho, 300'000, 11);
  // Sample the stationary queue length at random times and compare the
  // empirical pmf with (1 - rho) rho^k for small k.
  Rng rng(13);
  const SimTime lo = trajectory.start() +
                     (trajectory.end() - trajectory.start()) / 10;
  const SimTime hi = trajectory.end();
  std::vector<int> counts(8, 0);
  const int samples = 200'000;
  int in_range = 0;
  for (int i = 0; i < samples; ++i) {
    const SimTime t =
        lo + static_cast<SimTime>(rng.uniform_int(
                 static_cast<std::uint64_t>(hi - lo)));
    const std::int32_t q = trajectory.value_at(t);
    if (q < static_cast<std::int32_t>(counts.size())) {
      ++counts[static_cast<std::size_t>(q)];
      ++in_range;
    }
  }
  (void)in_range;
  for (int k = 0; k < 4; ++k) {
    const double expected = queueing::mm1_queue_length_pmf(rho, k);
    const double observed =
        static_cast<double>(counts[static_cast<std::size_t>(k)]) / samples;
    EXPECT_NEAR(observed, expected, expected * 0.08 + 0.005) << "k=" << k;
  }
}

TEST(Mm1ValidationTest, SimulatorIsDeterministicPerSeed) {
  const Workload workload = make_poisson_exp(0.050);
  SimConfig config = single_server_config(0.7);
  config.total_requests = 20'000;
  config.warmup_requests = 2'000;
  const SimResult a = run_cluster_sim(config, workload);
  const SimResult b = run_cluster_sim(config, workload);
  EXPECT_DOUBLE_EQ(a.mean_response_ms(), b.mean_response_ms());
  EXPECT_EQ(a.messages, b.messages);
  config.seed = 8;
  const SimResult c = run_cluster_sim(config, workload);
  EXPECT_NE(a.mean_response_ms(), c.mean_response_ms());
}

}  // namespace
}  // namespace finelb::sim
