#include "core/policy.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace finelb {
namespace {

TEST(PolicyTest, FactoryDefaults) {
  EXPECT_EQ(PolicyConfig::random().kind, PolicyKind::kRandom);
  EXPECT_EQ(PolicyConfig::round_robin().kind, PolicyKind::kRoundRobin);
  EXPECT_EQ(PolicyConfig::ideal().kind, PolicyKind::kIdeal);

  const PolicyConfig polling = PolicyConfig::polling(3, from_ms(1.0));
  EXPECT_EQ(polling.kind, PolicyKind::kPolling);
  EXPECT_EQ(polling.poll_size, 3);
  EXPECT_EQ(polling.discard_timeout, from_ms(1.0));

  const PolicyConfig broadcast = PolicyConfig::broadcast(from_ms(100));
  EXPECT_EQ(broadcast.kind, PolicyKind::kBroadcast);
  EXPECT_EQ(broadcast.broadcast_interval, from_ms(100));
  EXPECT_TRUE(broadcast.broadcast_jitter);
}

TEST(PolicyTest, FactoryValidation) {
  EXPECT_THROW(PolicyConfig::polling(0), InvariantError);
  EXPECT_THROW(PolicyConfig::polling(2, -1), InvariantError);
  EXPECT_THROW(PolicyConfig::broadcast(0), InvariantError);
}

TEST(PolicyTest, DescribeStrings) {
  EXPECT_EQ(PolicyConfig::random().describe(), "random");
  EXPECT_EQ(PolicyConfig::round_robin().describe(), "round-robin");
  EXPECT_EQ(PolicyConfig::ideal().describe(), "ideal");
  EXPECT_EQ(PolicyConfig::polling(2).describe(), "polling(2)");
  EXPECT_EQ(PolicyConfig::polling(3, from_ms(1)).describe(),
            "polling(3,discard=1ms)");
  EXPECT_EQ(PolicyConfig::broadcast(from_ms(100)).describe(),
            "broadcast(100ms)");
  PolicyConfig fixed = PolicyConfig::broadcast(from_ms(50), false);
  EXPECT_EQ(fixed.describe(), "broadcast(50ms,fixed)");
}

TEST(PolicyTest, ParseNamedPolicies) {
  EXPECT_EQ(parse_policy("random").kind, PolicyKind::kRandom);
  EXPECT_EQ(parse_policy("rr").kind, PolicyKind::kRoundRobin);
  EXPECT_EQ(parse_policy("round_robin").kind, PolicyKind::kRoundRobin);
  EXPECT_EQ(parse_policy("ideal").kind, PolicyKind::kIdeal);
}

TEST(PolicyTest, ParsePolling) {
  const PolicyConfig basic = parse_policy("polling:4");
  EXPECT_EQ(basic.kind, PolicyKind::kPolling);
  EXPECT_EQ(basic.poll_size, 4);
  EXPECT_EQ(basic.discard_timeout, 0);

  const PolicyConfig discard = parse_policy("polling:3:1.5");
  EXPECT_EQ(discard.poll_size, 3);
  EXPECT_EQ(discard.discard_timeout, from_ms(1.5));
}

TEST(PolicyTest, ParseBroadcast) {
  const PolicyConfig b = parse_policy("broadcast:250");
  EXPECT_EQ(b.kind, PolicyKind::kBroadcast);
  EXPECT_EQ(b.broadcast_interval, from_ms(250));
}

TEST(PolicyTest, ParseRejectsMalformed) {
  EXPECT_THROW(parse_policy(""), InvariantError);
  EXPECT_THROW(parse_policy("bogus"), InvariantError);
  EXPECT_THROW(parse_policy("polling"), InvariantError);
  EXPECT_THROW(parse_policy("polling:2:1:9"), InvariantError);
  EXPECT_THROW(parse_policy("broadcast"), InvariantError);
  EXPECT_THROW(parse_policy("polling:0"), InvariantError);
}

TEST(PolicyTest, ParseDescribeStableForPaperConfigs) {
  // The exact configurations the paper evaluates.
  for (const char* spec : {"random", "ideal", "polling:2", "polling:3",
                           "polling:4", "polling:8", "polling:3:1"}) {
    const PolicyConfig config = parse_policy(spec);
    (void)config.describe();  // must not throw
  }
}

}  // namespace
}  // namespace finelb
