#include "core/load_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/seqlock.h"

namespace finelb {
namespace {

TEST(SeqlockTest, SingleThreadedStoreLoad) {
  struct Pair {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  Seqlock<Pair> cell;
  EXPECT_EQ(cell.load().a, 0u);
  cell.store({7, 9});
  const Pair out = cell.load();
  EXPECT_EQ(out.a, 7u);
  EXPECT_EQ(out.b, 9u);
}

// The seqlock's whole point: readers never observe a half-written payload,
// no matter how hard one writer and several readers race. The payload is
// two words that the writer always keeps equal-and-opposite, so any torn
// read is detectable. Labeled RUNTIME so it runs under TSan, which must
// see no data race in the fence-based protocol.
TEST(SeqlockTest, ConcurrentReadersSeeConsistentSnapshots) {
  struct Mirrored {
    std::uint64_t value = 0;
    std::uint64_t negated = ~0ull;
  };
  Seqlock<Mirrored> cell;
  cell.store({0, ~0ull});

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Mirrored snapshot = cell.load();
        if (snapshot.negated != ~snapshot.value) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::uint64_t i = 1; i <= 200'000; ++i) {
    cell.store({i, ~i});
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);

  const Mirrored last = cell.load();
  EXPECT_EQ(last.value, 200'000u);
  EXPECT_EQ(last.negated, ~200'000ull);
}

TEST(LoadCacheTest, StoreLoadAndSnapshot) {
  LoadCache cache(4);
  for (std::size_t i = 0; i < 4; ++i) {
    cache.store(i, {static_cast<ServerId>(i), static_cast<std::int32_t>(10 * i),
                    static_cast<SimTime>(i)});
  }
  EXPECT_EQ(cache.load(2).queue_length, 20);
  std::vector<ServerLoad> out;
  cache.snapshot(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].server, 3);
  EXPECT_EQ(out[3].queue_length, 30);

  // snapshot() reuses the caller's capacity instead of reallocating.
  const auto* data_before = out.data();
  cache.snapshot(out);
  EXPECT_EQ(out.data(), data_before);
}

// One writer (the drain loop's role) updating entries while a reader (the
// dispatch path's role) snapshots: every observed entry must be internally
// consistent — the writer keeps measured_at equal to queue_length so a torn
// entry is detectable.
TEST(LoadCacheTest, ConcurrentWriterAndSnapshotReaders) {
  constexpr std::size_t kServers = 8;
  LoadCache cache(kServers);
  for (std::size_t i = 0; i < kServers; ++i) {
    cache.store(i, {static_cast<ServerId>(i), 0, 0});
  }

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> torn{0};
  std::thread reader([&] {
    std::vector<ServerLoad> out;
    while (!stop.load(std::memory_order_relaxed)) {
      cache.snapshot(out);
      for (const ServerLoad& load : out) {
        if (load.measured_at != static_cast<SimTime>(load.queue_length)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  for (std::int32_t round = 1; round <= 50'000; ++round) {
    for (std::size_t i = 0; i < kServers; ++i) {
      cache.store(i, {static_cast<ServerId>(i), round,
                      static_cast<SimTime>(round)});
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace finelb
