#include "core/selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace finelb {
namespace {

std::vector<ServerId> ids(int n) {
  std::vector<ServerId> out(n);
  for (int i = 0; i < n; ++i) out[i] = i;
  return out;
}

TEST(PickRandomTest, CoversAllCandidatesUniformly) {
  Rng rng(1);
  const auto candidates = ids(4);
  std::map<ServerId, int> counts;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    ++counts[pick_random(candidates, rng)];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [id, count] : counts) {
    (void)id;
    EXPECT_NEAR(static_cast<double>(count) / draws, 0.25, 0.02);
  }
}

TEST(PickRandomTest, EmptyThrows) {
  Rng rng(1);
  EXPECT_THROW(pick_random({}, rng), InvariantError);
}

TEST(PickLeastLoadedTest, ChoosesStrictMinimum) {
  Rng rng(2);
  const std::vector<ServerLoad> loads = {
      {0, 5, 0}, {1, 2, 0}, {2, 9, 0}, {3, 3, 0}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pick_least_loaded(loads, rng), 1);
  }
}

TEST(PickLeastLoadedTest, TieBreakIsUniform) {
  Rng rng(3);
  const std::vector<ServerLoad> loads = {
      {0, 1, 0}, {1, 1, 0}, {2, 7, 0}, {3, 1, 0}};
  std::map<ServerId, int> counts;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    ++counts[pick_least_loaded(loads, rng)];
  }
  EXPECT_EQ(counts.count(2), 0u);
  for (const ServerId id : {0, 1, 3}) {
    EXPECT_NEAR(static_cast<double>(counts[id]) / draws, 1.0 / 3.0, 0.02);
  }
}

TEST(PickLeastLoadedTest, SingleEntry) {
  Rng rng(4);
  const std::vector<ServerLoad> loads = {{7, 42, 0}};
  EXPECT_EQ(pick_least_loaded(loads, rng), 7);
  EXPECT_THROW(pick_least_loaded({}, rng), InvariantError);
}

TEST(ChoosePollSetTest, DistinctAndCorrectSize) {
  Rng rng(5);
  const auto candidates = ids(16);
  for (const std::size_t d : {1u, 2u, 3u, 8u, 16u}) {
    const auto set = choose_poll_set(candidates, d, rng);
    EXPECT_EQ(set.size(), d);
    const std::set<ServerId> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), d) << "poll set must be distinct servers";
  }
}

TEST(ChoosePollSetTest, ClampsToPopulation) {
  Rng rng(6);
  const auto set = choose_poll_set(ids(3), 8, rng);
  EXPECT_EQ(set.size(), 3u);
}

TEST(ChoosePollSetTest, UniformInclusionProbability) {
  // Every server should appear in a d-of-n poll set with probability d/n.
  Rng rng(7);
  const auto candidates = ids(8);
  const std::size_t d = 3;
  std::map<ServerId, int> counts;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    for (const ServerId id : choose_poll_set(candidates, d, rng)) {
      ++counts[id];
    }
  }
  for (const auto& [id, count] : counts) {
    (void)id;
    EXPECT_NEAR(static_cast<double>(count) / draws, 3.0 / 8.0, 0.02);
  }
}

TEST(ChoosePollSetTest, EmptyCandidatesThrow) {
  Rng rng(8);
  EXPECT_THROW(choose_poll_set({}, 2, rng), InvariantError);
}

TEST(RoundRobinTest, CyclesInOrder) {
  RoundRobinCursor cursor;
  const auto candidates = ids(3);
  EXPECT_EQ(cursor.next(candidates), 0);
  EXPECT_EQ(cursor.next(candidates), 1);
  EXPECT_EQ(cursor.next(candidates), 2);
  EXPECT_EQ(cursor.next(candidates), 0);
}

TEST(RoundRobinTest, AdaptsToShrinkingSet) {
  RoundRobinCursor cursor;
  const auto four = ids(4);
  cursor.next(four);
  cursor.next(four);
  const auto two = ids(2);
  // Cursor position 2 modulo new size 2 -> index 0.
  EXPECT_EQ(cursor.next(two), 0);
}

}  // namespace
}  // namespace finelb
