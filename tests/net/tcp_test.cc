#include "net/tcp.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/check.h"
#include "net/clock.h"

namespace finelb::net {
namespace {

TEST(TcpTest, ConnectAcceptRoundTrip) {
  TcpListener listener;
  TcpStream client = TcpStream::connect(listener.local_address());
  auto server = listener.accept_wait(kSecond);
  ASSERT_TRUE(server.has_value());

  const std::vector<std::uint8_t> payload = {10, 20, 30};
  ASSERT_TRUE(client.send_frame(payload));
  const auto frame = server->recv_frame_wait(kSecond);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);

  // And back.
  ASSERT_TRUE(server->send_frame(payload));
  const auto reply = client.recv_frame_wait(kSecond);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, payload);
}

TEST(TcpTest, FramingSurvivesCoalescedWrites) {
  TcpListener listener;
  TcpStream client = TcpStream::connect(listener.local_address());
  auto server = listener.accept_wait(kSecond);
  ASSERT_TRUE(server.has_value());

  // Several frames back-to-back: TCP will coalesce them into one segment;
  // the framing layer must split them again.
  for (std::uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send_frame(std::vector<std::uint8_t>{i, i, i}));
  }
  for (std::uint8_t i = 0; i < 5; ++i) {
    const auto frame = server->recv_frame_wait(kSecond);
    ASSERT_TRUE(frame.has_value()) << static_cast<int>(i);
    EXPECT_EQ(*frame, (std::vector<std::uint8_t>{i, i, i}));
  }
}

TEST(TcpTest, EmptyFrameAllowed) {
  TcpListener listener;
  TcpStream client = TcpStream::connect(listener.local_address());
  auto server = listener.accept_wait(kSecond);
  ASSERT_TRUE(server.has_value());
  ASSERT_TRUE(client.send_frame({}));
  const auto frame = server->recv_frame_wait(kSecond);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
}

TEST(TcpTest, LargeFrame) {
  TcpListener listener;
  TcpStream client = TcpStream::connect(listener.local_address());
  auto server = listener.accept_wait(kSecond);
  ASSERT_TRUE(server.has_value());
  std::vector<std::uint8_t> big(512 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  // Reader must run concurrently: half a megabyte exceeds socket buffers.
  std::thread sender([&client, &big] {
    EXPECT_TRUE(client.send_frame(big));
  });
  const auto frame = server->recv_frame_wait(5 * kSecond);
  sender.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, big);
}

TEST(TcpTest, PeerCloseDetected) {
  TcpListener listener;
  auto client = std::make_unique<TcpStream>(
      TcpStream::connect(listener.local_address()));
  auto server = listener.accept_wait(kSecond);
  ASSERT_TRUE(server.has_value());
  client.reset();  // close
  const auto frame = server->recv_frame_wait(kSecond);
  EXPECT_FALSE(frame.has_value());
  EXPECT_TRUE(server->peer_closed());
}

TEST(TcpTest, RecvTimeoutWithoutClose) {
  TcpListener listener;
  TcpStream client = TcpStream::connect(listener.local_address());
  auto server = listener.accept_wait(kSecond);
  ASSERT_TRUE(server.has_value());
  const SimTime start = monotonic_now();
  const auto frame = server->recv_frame_wait(50 * kMillisecond);
  EXPECT_FALSE(frame.has_value());
  EXPECT_FALSE(server->peer_closed());
  EXPECT_GE(monotonic_now() - start, 40 * kMillisecond);
  (void)client;
}

TEST(TcpTest, ConnectToDeadPortFails) {
  // Bind a listener, grab its port, destroy it; connecting must fail fast.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener;
    dead_port = listener.local_address().port;
  }
  EXPECT_THROW(TcpStream::connect(Address::loopback(dead_port)), SysError);
}

TEST(TcpTest, NonBlockingAcceptReturnsNullopt) {
  TcpListener listener;
  EXPECT_FALSE(listener.accept().has_value());
}

TEST(TcpTest, PingPongMeasuresBothVariants) {
  const TcpPingPongResult result = measure_tcp_rtt(100, 10);
  EXPECT_EQ(result.rounds, 100);
  EXPECT_GT(result.persistent_rtt_us, 1.0);
  EXPECT_GT(result.per_connection_rtt_us, result.persistent_rtt_us)
      << "setup/teardown must cost extra (the paper's 516 vs 339 us gap)";
  EXPECT_LT(result.per_connection_rtt_us, 50000.0);
}

}  // namespace
}  // namespace finelb::net
