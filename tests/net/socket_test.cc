#include "net/socket.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"
#include "fault/fault.h"
#include "net/clock.h"
#include "net/pingpong.h"
#include "net/poller.h"

namespace finelb::net {
namespace {

TEST(AddressTest, LoopbackFormatting) {
  const Address a = Address::loopback(8080);
  EXPECT_EQ(a.to_string(), "127.0.0.1:8080");
  const sockaddr_in sa = a.to_sockaddr();
  EXPECT_EQ(Address::from_sockaddr(sa), a);
}

TEST(UdpSocketTest, BindsEphemeralPort) {
  UdpSocket s;
  const Address addr = s.local_address();
  EXPECT_GT(addr.port, 0);
}

TEST(UdpSocketTest, SendToAndRecvFrom) {
  UdpSocket a;
  UdpSocket b;
  const std::array<std::uint8_t, 4> payload = {1, 2, 3, 4};
  ASSERT_TRUE(a.send_to(payload, b.local_address()));

  std::array<std::uint8_t, 16> buf{};
  Poller poller;
  poller.add(b.fd(), 0);
  EXPECT_FALSE(poller.wait(kSecond).empty());
  const auto dgram = b.recv_from(buf);
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(dgram->size, 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(dgram->from.port, a.local_address().port);
}

TEST(UdpSocketTest, ConnectedSendRecv) {
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  const std::array<std::uint8_t, 3> payload = {9, 8, 7};
  ASSERT_TRUE(client.send(payload));

  Poller poller;
  poller.add(server.fd(), 0);
  ASSERT_FALSE(poller.wait(kSecond).empty());
  std::array<std::uint8_t, 16> buf{};
  const auto dgram = server.recv_from(buf);
  ASSERT_TRUE(dgram.has_value());

  // Reply to the connected client: it must receive via plain recv().
  ASSERT_TRUE(server.send_to(payload, dgram->from));
  Poller cpoller;
  cpoller.add(client.fd(), 0);
  ASSERT_FALSE(cpoller.wait(kSecond).empty());
  std::array<std::uint8_t, 16> reply{};
  EXPECT_TRUE(client.recv(reply).has_value());
}

TEST(UdpSocketTest, ConnectedSocketFiltersOtherPeers) {
  UdpSocket peer_a;
  UdpSocket peer_b;
  UdpSocket client;
  client.connect(peer_a.local_address());
  // Datagram from an unrelated peer must not be delivered.
  const std::array<std::uint8_t, 1> payload = {1};
  ASSERT_TRUE(peer_b.send_to(payload, client.local_address()));
  sleep_for(20 * kMillisecond);
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(client.recv(buf).has_value());
}

TEST(UdpSocketTest, NonBlockingRecvReturnsNullopt) {
  UdpSocket s;
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(s.recv_from(buf).has_value());
}

TEST(PollerTest, TimeoutExpiresEmpty) {
  UdpSocket s;
  Poller poller;
  poller.add(s.fd(), 42);
  const SimTime start = monotonic_now();
  EXPECT_TRUE(poller.wait(20 * kMillisecond).empty());
  EXPECT_GE(monotonic_now() - start, 15 * kMillisecond);
}

TEST(PollerTest, TagsRouteReadiness) {
  UdpSocket a;
  UdpSocket b;
  Poller poller;
  poller.add(a.fd(), 100);
  poller.add(b.fd(), 200);
  UdpSocket sender;
  const std::array<std::uint8_t, 1> payload = {1};
  ASSERT_TRUE(sender.send_to(payload, b.local_address()));
  const auto ready = poller.wait(kSecond);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].tag, 200u);
  EXPECT_TRUE(ready[0].readable);
}

TEST(PollerTest, RemoveStopsWatching) {
  UdpSocket a;
  Poller poller;
  poller.add(a.fd(), 1);
  EXPECT_EQ(poller.size(), 1u);
  poller.remove(a.fd());
  EXPECT_EQ(poller.size(), 0u);
  EXPECT_THROW(poller.remove(a.fd()), InvariantError);
}

TEST(ClockTest, MonotonicAdvances) {
  const SimTime a = monotonic_now();
  const SimTime b = monotonic_now();
  EXPECT_GE(b, a);
}

TEST(ClockTest, SleepUntilHonoursDeadline) {
  const SimTime start = monotonic_now();
  sleep_until(start + 10 * kMillisecond);
  EXPECT_GE(monotonic_now() - start, 10 * kMillisecond);
  // A deadline in the past returns promptly.
  const SimTime t2 = monotonic_now();
  sleep_until(t2 - kSecond);
  EXPECT_LT(monotonic_now() - t2, 50 * kMillisecond);
}

TEST(ClockTest, SleepForZeroOrNegativeIsNoop) {
  const SimTime start = monotonic_now();
  sleep_for(0);
  sleep_for(-kSecond);
  EXPECT_LT(monotonic_now() - start, 50 * kMillisecond);
}

TEST(DatagramBatchTest, AppendRespectsCapacityAndBufferSize) {
  DatagramBatch batch(2, 8);
  const std::array<std::uint8_t, 8> fits = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::array<std::uint8_t, 9> too_big = {};
  const Address dest = Address::loopback(1234);
  EXPECT_FALSE(batch.append(too_big, dest));
  EXPECT_TRUE(batch.append(fits, dest));
  EXPECT_TRUE(batch.append(fits, dest));
  EXPECT_FALSE(batch.append(fits, dest));  // full
  EXPECT_EQ(batch.size(), 2u);
  batch.clear();
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.capacity(), 2u);
}

TEST(UdpSocketTest, SendBatchRecvBatchRoundTrip) {
  UdpSocket a;
  UdpSocket b;
  DatagramBatch out(8, 16);
  for (std::uint8_t i = 0; i < 5; ++i) {
    const std::array<std::uint8_t, 3> payload = {i, 42,
                                                 static_cast<std::uint8_t>(
                                                     i * 2)};
    ASSERT_TRUE(out.append(payload, b.local_address()));
  }
  EXPECT_EQ(a.send_batch(out), 5u);

  Poller poller;
  poller.add(b.fd(), 0);
  EXPECT_FALSE(poller.wait(kSecond).empty());
  DatagramBatch in(8, 16);
  // Loopback may surface the burst across several reads; drain until all
  // five arrived.
  std::vector<std::vector<std::uint8_t>> received;
  const SimTime deadline = monotonic_now() + 2 * kSecond;
  while (received.size() < 5 && monotonic_now() < deadline) {
    if (b.recv_batch(in) == 0) {
      poller.wait(50 * kMillisecond);
      continue;
    }
    for (std::size_t i = 0; i < in.size(); ++i) {
      const auto payload = in.payload(i);
      received.emplace_back(payload.begin(), payload.end());
      EXPECT_EQ(in.address(i).port, a.local_address().port);
    }
  }
  ASSERT_EQ(received.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(received[i],
              (std::vector<std::uint8_t>{i, 42,
                                         static_cast<std::uint8_t>(i * 2)}));
  }
}

TEST(UdpSocketTest, RecvBatchOnConnectedSocketDrainsBurst) {
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  const std::array<std::uint8_t, 2> payload = {7, 7};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.send(payload));
  }
  Poller poller;
  poller.add(server.fd(), 0);
  EXPECT_FALSE(poller.wait(kSecond).empty());
  DatagramBatch in(4, 16);  // capacity below burst: needs several calls
  std::size_t total = 0;
  const SimTime deadline = monotonic_now() + 2 * kSecond;
  while (total < 10 && monotonic_now() < deadline) {
    const std::size_t n = server.recv_batch(in);
    if (n == 0) {
      poller.wait(50 * kMillisecond);
      continue;
    }
    EXPECT_LE(n, in.capacity());
    total += n;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(server.recv_batch(in), 0u);  // drained
}

TEST(UdpSocketTest, SendBatchAppliesFaultsPerDatagram) {
  // Egress drop probability 1: every datagram in the batch must be rolled
  // (and eaten) individually — the batch must not count as one decision.
  UdpSocket a;
  UdpSocket b;
  fault::FaultSpec spec;
  spec.egress.drop_prob = 1.0;
  auto injector = std::make_shared<fault::FaultInjector>(spec);
  a.attach_fault_injector(injector);

  DatagramBatch out(8, 16);
  const std::array<std::uint8_t, 2> payload = {1, 2};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(out.append(payload, b.local_address()));
  }
  // Drops report as sent (the network ate them), matching send_to.
  EXPECT_EQ(a.send_batch(out), 6u);
  EXPECT_EQ(injector->counters().decisions, 6);
  EXPECT_EQ(injector->counters().drops, 6);

  Poller poller;
  poller.add(b.fd(), 0);
  poller.wait(100 * kMillisecond);
  DatagramBatch in(8, 16);
  EXPECT_EQ(b.recv_batch(in), 0u);  // nothing survived
}

TEST(UdpSocketTest, RecvBatchAppliesFaultsPerDatagram) {
  UdpSocket a;
  UdpSocket b;
  fault::FaultSpec spec;
  spec.ingress.drop_prob = 1.0;
  auto injector = std::make_shared<fault::FaultInjector>(spec);
  b.attach_fault_injector(injector);

  const std::array<std::uint8_t, 2> payload = {3, 4};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a.send_to(payload, b.local_address()));
  }
  Poller poller;
  poller.add(b.fd(), 0);
  EXPECT_FALSE(poller.wait(kSecond).empty());
  DatagramBatch in(8, 16);
  // Give the burst time to land, then drain: every datagram must be rolled
  // and swallowed by the ingress fault stream.
  const SimTime deadline = monotonic_now() + kSecond;
  while (injector->counters().decisions < 4 && monotonic_now() < deadline) {
    EXPECT_EQ(b.recv_batch(in), 0u);
    poller.wait(50 * kMillisecond);
  }
  EXPECT_EQ(injector->counters().decisions, 4);
  EXPECT_EQ(injector->counters().drops, 4);
}

TEST(PingPongTest, MeasuresPlausibleLoopbackRtt) {
  const PingPongResult result = measure_udp_rtt(200, 20);
  EXPECT_EQ(result.rounds, 200);
  EXPECT_GT(result.mean_rtt_us, 1.0);      // not free
  EXPECT_LT(result.mean_rtt_us, 20000.0);  // not pathological
  EXPECT_LE(result.min_rtt_us, result.mean_rtt_us);
  EXPECT_LE(result.mean_rtt_us, result.p99_rtt_us * 1.01);
}

}  // namespace
}  // namespace finelb::net
