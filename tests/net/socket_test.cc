#include "net/socket.h"

#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "common/check.h"
#include "net/clock.h"
#include "net/pingpong.h"
#include "net/poller.h"

namespace finelb::net {
namespace {

TEST(AddressTest, LoopbackFormatting) {
  const Address a = Address::loopback(8080);
  EXPECT_EQ(a.to_string(), "127.0.0.1:8080");
  const sockaddr_in sa = a.to_sockaddr();
  EXPECT_EQ(Address::from_sockaddr(sa), a);
}

TEST(UdpSocketTest, BindsEphemeralPort) {
  UdpSocket s;
  const Address addr = s.local_address();
  EXPECT_GT(addr.port, 0);
}

TEST(UdpSocketTest, SendToAndRecvFrom) {
  UdpSocket a;
  UdpSocket b;
  const std::array<std::uint8_t, 4> payload = {1, 2, 3, 4};
  ASSERT_TRUE(a.send_to(payload, b.local_address()));

  std::array<std::uint8_t, 16> buf{};
  Poller poller;
  poller.add(b.fd(), 0);
  EXPECT_FALSE(poller.wait(kSecond).empty());
  const auto dgram = b.recv_from(buf);
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(dgram->size, 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(dgram->from.port, a.local_address().port);
}

TEST(UdpSocketTest, ConnectedSendRecv) {
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  const std::array<std::uint8_t, 3> payload = {9, 8, 7};
  ASSERT_TRUE(client.send(payload));

  Poller poller;
  poller.add(server.fd(), 0);
  ASSERT_FALSE(poller.wait(kSecond).empty());
  std::array<std::uint8_t, 16> buf{};
  const auto dgram = server.recv_from(buf);
  ASSERT_TRUE(dgram.has_value());

  // Reply to the connected client: it must receive via plain recv().
  ASSERT_TRUE(server.send_to(payload, dgram->from));
  Poller cpoller;
  cpoller.add(client.fd(), 0);
  ASSERT_FALSE(cpoller.wait(kSecond).empty());
  std::array<std::uint8_t, 16> reply{};
  EXPECT_TRUE(client.recv(reply).has_value());
}

TEST(UdpSocketTest, ConnectedSocketFiltersOtherPeers) {
  UdpSocket peer_a;
  UdpSocket peer_b;
  UdpSocket client;
  client.connect(peer_a.local_address());
  // Datagram from an unrelated peer must not be delivered.
  const std::array<std::uint8_t, 1> payload = {1};
  ASSERT_TRUE(peer_b.send_to(payload, client.local_address()));
  sleep_for(20 * kMillisecond);
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(client.recv(buf).has_value());
}

TEST(UdpSocketTest, NonBlockingRecvReturnsNullopt) {
  UdpSocket s;
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(s.recv_from(buf).has_value());
}

TEST(PollerTest, TimeoutExpiresEmpty) {
  UdpSocket s;
  Poller poller;
  poller.add(s.fd(), 42);
  const SimTime start = monotonic_now();
  EXPECT_TRUE(poller.wait(20 * kMillisecond).empty());
  EXPECT_GE(monotonic_now() - start, 15 * kMillisecond);
}

TEST(PollerTest, TagsRouteReadiness) {
  UdpSocket a;
  UdpSocket b;
  Poller poller;
  poller.add(a.fd(), 100);
  poller.add(b.fd(), 200);
  UdpSocket sender;
  const std::array<std::uint8_t, 1> payload = {1};
  ASSERT_TRUE(sender.send_to(payload, b.local_address()));
  const auto ready = poller.wait(kSecond);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].tag, 200u);
  EXPECT_TRUE(ready[0].readable);
}

TEST(PollerTest, RemoveStopsWatching) {
  UdpSocket a;
  Poller poller;
  poller.add(a.fd(), 1);
  EXPECT_EQ(poller.size(), 1u);
  poller.remove(a.fd());
  EXPECT_EQ(poller.size(), 0u);
  EXPECT_THROW(poller.remove(a.fd()), InvariantError);
}

TEST(ClockTest, MonotonicAdvances) {
  const SimTime a = monotonic_now();
  const SimTime b = monotonic_now();
  EXPECT_GE(b, a);
}

TEST(ClockTest, SleepUntilHonoursDeadline) {
  const SimTime start = monotonic_now();
  sleep_until(start + 10 * kMillisecond);
  EXPECT_GE(monotonic_now() - start, 10 * kMillisecond);
  // A deadline in the past returns promptly.
  const SimTime t2 = monotonic_now();
  sleep_until(t2 - kSecond);
  EXPECT_LT(monotonic_now() - t2, 50 * kMillisecond);
}

TEST(ClockTest, SleepForZeroOrNegativeIsNoop) {
  const SimTime start = monotonic_now();
  sleep_for(0);
  sleep_for(-kSecond);
  EXPECT_LT(monotonic_now() - start, 50 * kMillisecond);
}

TEST(PingPongTest, MeasuresPlausibleLoopbackRtt) {
  const PingPongResult result = measure_udp_rtt(200, 20);
  EXPECT_EQ(result.rounds, 200);
  EXPECT_GT(result.mean_rtt_us, 1.0);      // not free
  EXPECT_LT(result.mean_rtt_us, 20000.0);  // not pathological
  EXPECT_LE(result.min_rtt_us, result.mean_rtt_us);
  EXPECT_LE(result.mean_rtt_us, result.p99_rtt_us * 1.01);
}

}  // namespace
}  // namespace finelb::net
