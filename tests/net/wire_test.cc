#include "net/wire.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace finelb::net {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-9'000'000'000ll);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -9'000'000'000ll);
  EXPECT_TRUE(r.done());
}

TEST(WireTest, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const auto bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[1], 0x03);
  EXPECT_EQ(bytes[2], 0x02);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(WireTest, StringRoundTrip) {
  Writer w;
  w.str("image-store");
  w.str("");  // empty string is valid
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "image-store");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(WireTest, TruncatedFieldThrows) {
  Writer w;
  w.u32(7);
  const auto bytes = w.bytes();
  Reader r(bytes.subspan(0, 3));
  EXPECT_THROW(r.u32(), InvariantError);
}

TEST(WireTest, TruncatedStringThrows) {
  Writer w;
  w.str("hello");
  const auto bytes = w.bytes();
  Reader r(bytes.subspan(0, 4));  // length says 5 but only 2 bytes follow
  EXPECT_THROW(r.str(), InvariantError);
}

TEST(WireTest, RemainingTracksConsumption) {
  Writer w;
  w.u16(1);
  w.u16(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 4u);
  r.u16();
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.done());
  r.u16();
  EXPECT_TRUE(r.done());
}

TEST(WireTest, EmptyReaderThrowsOnRead) {
  Reader r({});
  EXPECT_THROW(r.u8(), InvariantError);
}

TEST(WireTest, BlobRoundTrip) {
  Writer w;
  const std::vector<std::uint8_t> payload = {0, 255, 7, 0, 42};
  w.blob(payload);
  w.blob({});  // empty blob is valid
  Reader r(w.bytes());
  EXPECT_EQ(r.blob(), payload);
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(WireTest, TruncatedBlobThrows) {
  Writer w;
  w.blob(std::vector<std::uint8_t>{1, 2, 3, 4});
  const auto bytes = w.bytes();
  // Cut inside the payload: length prefix says 4 but only 2 bytes follow.
  Reader r(bytes.subspan(0, 6));
  EXPECT_THROW(r.blob(), InvariantError);
  // Cut inside the length prefix itself.
  Reader r2(bytes.subspan(0, 2));
  EXPECT_THROW(r2.blob(), InvariantError);
}

TEST(WireTest, LargeBlobPreserved) {
  Writer w;
  std::vector<std::uint8_t> big(60 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131);
  }
  w.blob(big);
  Reader r(w.bytes());
  EXPECT_EQ(r.blob(), big);
}

}  // namespace
}  // namespace finelb::net
