#include "net/message.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"

namespace finelb::net {
namespace {

TEST(MessageTest, LoadInquiryRoundTrip) {
  LoadInquiry m;
  m.seq = 0xfeedface12345678ull;
  m.trace_id = (3ull << 40) | 42;
  m.origin_ns = -123456789;
  const auto decoded = LoadInquiry::decode(m.encode());
  EXPECT_EQ(decoded.seq, m.seq);
  EXPECT_EQ(decoded.trace_id, m.trace_id);
  EXPECT_EQ(decoded.origin_ns, m.origin_ns);
  EXPECT_EQ(peek_type(m.encode()), MsgType::kLoadInquiry);
}

TEST(MessageTest, LoadReplyRoundTrip) {
  LoadReply m;
  m.seq = 99;
  m.queue_length = 17;
  m.trace_id = (5ull << 40) | 7;
  m.origin_ns = 1;
  m.server_ns = 0x7fffffffffffffffll;
  const auto decoded = LoadReply::decode(m.encode());
  EXPECT_EQ(decoded.seq, 99u);
  EXPECT_EQ(decoded.queue_length, 17);
  EXPECT_EQ(decoded.trace_id, m.trace_id);
  EXPECT_EQ(decoded.origin_ns, 1);
  EXPECT_EQ(decoded.server_ns, m.server_ns);
}

TEST(MessageTest, ServiceRequestRoundTrip) {
  ServiceRequest m;
  m.request_id = (7ull << 40) | 12345;
  m.service_us = 22200;
  m.partition = 3;
  m.trace_id = m.request_id;
  m.origin_ns = 987654321;
  const auto decoded = ServiceRequest::decode(m.encode());
  EXPECT_EQ(decoded.request_id, m.request_id);
  EXPECT_EQ(decoded.service_us, 22200u);
  EXPECT_EQ(decoded.partition, 3u);
  EXPECT_EQ(decoded.trace_id, m.request_id);
  EXPECT_EQ(decoded.origin_ns, 987654321);
}

TEST(MessageTest, ServiceResponseRoundTrip) {
  ServiceResponse m;
  m.request_id = 42;
  m.server = 11;
  m.queue_at_arrival = 5;
  m.trace_id = 42;
  m.server_ns = -1;
  const auto decoded = ServiceResponse::decode(m.encode());
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.server, 11);
  EXPECT_EQ(decoded.queue_at_arrival, 5);
  EXPECT_EQ(decoded.trace_id, 42u);
  EXPECT_EQ(decoded.server_ns, -1);
}

TEST(MessageTest, UntracedMessagesCarryZeroTraceContext) {
  // Default-constructed (untraced) messages must keep trace_id == 0 across
  // the wire — receivers treat 0 as "no trace context".
  LoadInquiry inquiry;
  inquiry.seq = 8;
  EXPECT_EQ(LoadInquiry::decode(inquiry.encode()).trace_id, 0u);
  ServiceRequest request;
  request.request_id = 8;
  EXPECT_EQ(ServiceRequest::decode(request.encode()).trace_id, 0u);
}

TEST(MessageTest, TraceInquiryReplyRoundTrip) {
  TraceInquiry inquiry;
  inquiry.seq = 4242;
  inquiry.offset = 0xffffffffu;
  const auto dinq = TraceInquiry::decode(inquiry.encode());
  EXPECT_EQ(dinq.seq, 4242u);
  EXPECT_EQ(dinq.offset, 0xffffffffu);

  TraceReply reply;
  reply.seq = 4242;
  reply.node = 13;
  reply.server_ns = 123456789012345ll;
  reply.total = 100;
  reply.offset = 40;
  for (int i = 0; i < 60; ++i) {
    TraceRecordWire rec;
    rec.request_id = (1ull << 40) | static_cast<std::uint64_t>(i);
    rec.point = static_cast<std::uint8_t>(i % 9);
    rec.node = 13;
    rec.at_ns = 1000000ll * i;
    rec.detail = -i;
    reply.records.push_back(rec);
  }
  const auto dreply = TraceReply::decode(reply.encode());
  EXPECT_EQ(dreply.seq, 4242u);
  EXPECT_EQ(dreply.node, 13);
  EXPECT_EQ(dreply.server_ns, reply.server_ns);
  EXPECT_EQ(dreply.total, 100u);
  EXPECT_EQ(dreply.offset, 40u);
  ASSERT_EQ(dreply.records.size(), 60u);
  EXPECT_EQ(dreply.records[59].request_id, (1ull << 40) | 59u);
  EXPECT_EQ(dreply.records[59].point, 59 % 9);
  EXPECT_EQ(dreply.records[59].at_ns, 59000000ll);
  EXPECT_EQ(dreply.records[59].detail, -59);
}

TEST(MessageTest, TraceReplyMaxChunkStaysUnderDatagramCap) {
  // A full chunk (kTraceReplyMaxRecords) must encode below 64 KiB so a
  // single sendto never fails on datagram size.
  TraceReply reply;
  reply.seq = 1;
  reply.total = static_cast<std::uint32_t>(kTraceReplyMaxRecords);
  reply.records.resize(kTraceReplyMaxRecords);
  const auto bytes = reply.encode();
  EXPECT_LT(bytes.size(), 64u * 1024u);
  const auto decoded = TraceReply::decode(bytes);
  EXPECT_EQ(decoded.records.size(), kTraceReplyMaxRecords);
}

TEST(MessageTest, DecisionInquiryReplyRoundTrip) {
  DecisionInquiry inquiry;
  inquiry.seq = 777;
  inquiry.offset = 0xfffffffeu;
  const auto dinq = DecisionInquiry::decode(inquiry.encode());
  EXPECT_EQ(dinq.seq, 777u);
  EXPECT_EQ(dinq.offset, 0xfffffffeu);

  DecisionReply reply;
  reply.seq = 777;
  reply.node = 5;
  reply.server_ns = 987654321012345ll;
  reply.total = 30;
  reply.offset = 10;
  for (int i = 0; i < 20; ++i) {
    DecisionRecordWire rec;
    rec.request_id = (1ull << 40) | static_cast<std::uint64_t>(i);
    rec.at_ns = 1000000ll * i;
    rec.chosen = i % 16;
    rec.polled_count = static_cast<std::uint8_t>(i % (kDecisionWirePollMax + 1));
    rec.flags = static_cast<std::uint8_t>(i % 2);  // bit 0: blind fallback
    rec.blacklist_filtered = static_cast<std::uint8_t>(i % 3);
    for (std::uint8_t p = 0; p < rec.polled_count; ++p) {
      rec.polled[p].server = p;
      rec.polled[p].queue_length = -p;  // sign must survive
      rec.polled[p].age_ns = 500ll * p;
    }
    reply.records.push_back(rec);
  }
  const auto dreply = DecisionReply::decode(reply.encode());
  EXPECT_EQ(dreply.seq, 777u);
  EXPECT_EQ(dreply.node, 5);
  EXPECT_EQ(dreply.server_ns, reply.server_ns);
  EXPECT_EQ(dreply.total, 30u);
  EXPECT_EQ(dreply.offset, 10u);
  ASSERT_EQ(dreply.records.size(), 20u);
  for (std::size_t i = 0; i < dreply.records.size(); ++i) {
    const DecisionRecordWire& rec = dreply.records[i];
    EXPECT_EQ(rec.request_id, reply.records[i].request_id);
    EXPECT_EQ(rec.at_ns, reply.records[i].at_ns);
    EXPECT_EQ(rec.chosen, reply.records[i].chosen);
    ASSERT_EQ(rec.polled_count, reply.records[i].polled_count);
    EXPECT_EQ(rec.flags, reply.records[i].flags);
    EXPECT_EQ(rec.blacklist_filtered, reply.records[i].blacklist_filtered);
    for (std::uint8_t p = 0; p < rec.polled_count; ++p) {
      EXPECT_EQ(rec.polled[p].server, p);
      EXPECT_EQ(rec.polled[p].queue_length, -p);
      EXPECT_EQ(rec.polled[p].age_ns, 500ll * p);
    }
  }
}

TEST(MessageTest, DecisionReplyMaxChunkStaysUnderDatagramCap) {
  // A full chunk of worst-case records (every polled slot occupied) must
  // encode below 64 KiB so a single sendto never fails on datagram size.
  DecisionReply reply;
  reply.seq = 1;
  reply.total = static_cast<std::uint32_t>(kDecisionReplyMaxRecords);
  reply.records.resize(kDecisionReplyMaxRecords);
  for (auto& rec : reply.records) {
    rec.polled_count = static_cast<std::uint8_t>(kDecisionWirePollMax);
  }
  const auto bytes = reply.encode();
  EXPECT_LT(bytes.size(), 64u * 1024u);
  const auto decoded = DecisionReply::decode(bytes);
  EXPECT_EQ(decoded.records.size(), kDecisionReplyMaxRecords);
}

TEST(MessageTest, ManagerProtocolRoundTrips) {
  Acquire a;
  a.seq = 1001;
  EXPECT_EQ(Acquire::decode(a.encode()).seq, 1001u);

  AcquireReply r;
  r.seq = 1001;
  r.server = 9;
  const auto decoded = AcquireReply::decode(r.encode());
  EXPECT_EQ(decoded.seq, 1001u);
  EXPECT_EQ(decoded.server, 9);

  Release rel;
  rel.server = 9;
  EXPECT_EQ(Release::decode(rel.encode()).server, 9);
}

TEST(MessageTest, PublishRoundTrip) {
  Publish m;
  m.service = "photo-album";
  m.partition = 2;
  m.server = 14;
  m.service_port = 40001;
  m.load_port = 40002;
  m.ttl_ms = 2000;
  const auto decoded = Publish::decode(m.encode());
  EXPECT_EQ(decoded.service, "photo-album");
  EXPECT_EQ(decoded.partition, 2u);
  EXPECT_EQ(decoded.server, 14);
  EXPECT_EQ(decoded.service_port, 40001);
  EXPECT_EQ(decoded.load_port, 40002);
  EXPECT_EQ(decoded.ttl_ms, 2000u);
}

TEST(MessageTest, SnapshotRoundTrip) {
  SnapshotRequest req;
  req.seq = 5;
  req.service = "experiment";
  const auto dreq = SnapshotRequest::decode(req.encode());
  EXPECT_EQ(dreq.seq, 5u);
  EXPECT_EQ(dreq.service, "experiment");

  SnapshotReply reply;
  reply.seq = 5;
  for (int i = 0; i < 16; ++i) {
    Publish p;
    p.service = "experiment";
    p.server = i;
    p.service_port = static_cast<std::uint16_t>(40000 + 2 * i);
    p.load_port = static_cast<std::uint16_t>(40001 + 2 * i);
    p.ttl_ms = 1000;
    reply.entries.push_back(p);
  }
  const auto dreply = SnapshotReply::decode(reply.encode());
  EXPECT_EQ(dreply.seq, 5u);
  ASSERT_EQ(dreply.entries.size(), 16u);
  EXPECT_EQ(dreply.entries[7].server, 7);
  EXPECT_EQ(dreply.entries[7].service_port, 40014);
}

TEST(MessageTest, EmptySnapshotReply) {
  SnapshotReply reply;
  reply.seq = 1;
  const auto decoded = SnapshotReply::decode(reply.encode());
  EXPECT_TRUE(decoded.entries.empty());
}

TEST(MessageTest, WrongTypeTagThrows) {
  LoadInquiry inquiry;
  inquiry.seq = 1;
  const auto bytes = inquiry.encode();
  EXPECT_THROW(LoadReply::decode(bytes), InvariantError);
  EXPECT_THROW(ServiceRequest::decode(bytes), InvariantError);
}

TEST(MessageTest, EmptyDatagramThrows) {
  EXPECT_THROW(peek_type({}), InvariantError);
}

TEST(MessageTest, ElectionProtocolRoundTrips) {
  VoteRequest request;
  request.term = 0xabcdef0123456789ull;
  request.candidate = 4;
  const auto drequest = VoteRequest::decode(request.encode());
  EXPECT_EQ(drequest.term, request.term);
  EXPECT_EQ(drequest.candidate, 4);

  VoteReply reply;
  reply.term = 17;
  reply.voter = 2;
  reply.granted = true;
  const auto dreply = VoteReply::decode(reply.encode());
  EXPECT_EQ(dreply.term, 17u);
  EXPECT_EQ(dreply.voter, 2);
  EXPECT_TRUE(dreply.granted);
  reply.granted = false;
  EXPECT_FALSE(VoteReply::decode(reply.encode()).granted);

  Heartbeat heartbeat;
  heartbeat.term = 3;
  heartbeat.leader = 0;
  const auto dheartbeat = Heartbeat::decode(heartbeat.encode());
  EXPECT_EQ(dheartbeat.term, 3u);
  EXPECT_EQ(dheartbeat.leader, 0);

  HeartbeatAck ack;
  ack.term = 3;
  ack.follower = 1;
  const auto dack = HeartbeatAck::decode(ack.encode());
  EXPECT_EQ(dack.term, 3u);
  EXPECT_EQ(dack.follower, 1);
}

TEST(MessageTest, RedirectRoundTrip) {
  Redirect redirect;
  redirect.seq = 0x1122334455667788ull;
  redirect.term = 9;
  redirect.leader = 2;
  redirect.leader_port = 40123;
  const auto decoded = Redirect::decode(redirect.encode());
  EXPECT_EQ(decoded.seq, redirect.seq);
  EXPECT_EQ(decoded.term, 9u);
  EXPECT_EQ(decoded.leader, 2);
  EXPECT_EQ(decoded.leader_port, 40123);

  // The "election in progress" form: no known leader.
  Redirect unknown;
  unknown.seq = 1;
  const auto dunknown = Redirect::decode(unknown.encode());
  EXPECT_EQ(dunknown.leader, -1);
  EXPECT_EQ(dunknown.leader_port, 0);
}

// Truncation property sweep: every message type must reject every proper
// prefix of its encoding rather than read garbage.
class MessageTruncation : public ::testing::TestWithParam<int> {};

TEST_P(MessageTruncation, AllPrefixesRejected) {
  std::vector<std::uint8_t> bytes;
  switch (GetParam()) {
    case 0: {
      LoadInquiry m;
      m.seq = 7;
      bytes = m.encode();
      break;
    }
    case 1: {
      LoadReply m;
      m.seq = 7;
      m.queue_length = 3;
      bytes = m.encode();
      break;
    }
    case 2: {
      ServiceRequest m;
      m.request_id = 7;
      bytes = m.encode();
      break;
    }
    case 3: {
      ServiceResponse m;
      m.request_id = 7;
      bytes = m.encode();
      break;
    }
    case 4: {
      Publish m;
      m.service = "svc";
      bytes = m.encode();
      break;
    }
    case 5: {
      TraceInquiry m;
      m.seq = 7;
      bytes = m.encode();
      break;
    }
    case 6: {
      TraceReply m;
      m.seq = 7;
      m.total = 1;
      m.records.emplace_back();
      bytes = m.encode();
      break;
    }
    case 7: {
      VoteRequest m;
      m.term = 7;
      m.candidate = 1;
      bytes = m.encode();
      break;
    }
    case 8: {
      VoteReply m;
      m.term = 7;
      m.voter = 1;
      m.granted = true;
      bytes = m.encode();
      break;
    }
    case 9: {
      Heartbeat m;
      m.term = 7;
      m.leader = 1;
      bytes = m.encode();
      break;
    }
    case 10: {
      HeartbeatAck m;
      m.term = 7;
      m.follower = 1;
      bytes = m.encode();
      break;
    }
    case 11: {
      Redirect m;
      m.seq = 7;
      m.term = 7;
      m.leader = 1;
      m.leader_port = 9000;
      bytes = m.encode();
      break;
    }
    case 12: {
      DecisionInquiry m;
      m.seq = 7;
      bytes = m.encode();
      break;
    }
    case 13: {
      DecisionReply m;
      m.seq = 7;
      m.total = 1;
      m.records.emplace_back();
      m.records.back().polled_count = 2;
      bytes = m.encode();
      break;
    }
  }
  const std::span<const std::uint8_t> all(bytes);
  for (std::size_t len = 1; len < bytes.size(); ++len) {
    const auto prefix = all.subspan(0, len);
    switch (GetParam()) {
      case 0:
        EXPECT_THROW(LoadInquiry::decode(prefix), InvariantError);
        break;
      case 1:
        EXPECT_THROW(LoadReply::decode(prefix), InvariantError);
        break;
      case 2:
        EXPECT_THROW(ServiceRequest::decode(prefix), InvariantError);
        break;
      case 3:
        EXPECT_THROW(ServiceResponse::decode(prefix), InvariantError);
        break;
      case 4:
        EXPECT_THROW(Publish::decode(prefix), InvariantError);
        break;
      case 5:
        EXPECT_THROW(TraceInquiry::decode(prefix), InvariantError);
        break;
      case 6:
        EXPECT_THROW(TraceReply::decode(prefix), InvariantError);
        break;
      case 7:
        EXPECT_THROW(VoteRequest::decode(prefix), InvariantError);
        break;
      case 8:
        EXPECT_THROW(VoteReply::decode(prefix), InvariantError);
        break;
      case 9:
        EXPECT_THROW(Heartbeat::decode(prefix), InvariantError);
        break;
      case 10:
        EXPECT_THROW(HeartbeatAck::decode(prefix), InvariantError);
        break;
      case 11:
        EXPECT_THROW(Redirect::decode(prefix), InvariantError);
        break;
      case 12:
        EXPECT_THROW(DecisionInquiry::decode(prefix), InvariantError);
        break;
      case 13:
        EXPECT_THROW(DecisionReply::decode(prefix), InvariantError);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMessageTypes, MessageTruncation,
                         ::testing::Range(0, 14));

// ---------------------------------------------------------------------------
// Hot-path codec surfaces: for every one of the 12 message types,
// encode_into must be byte-identical to encode(), refuse too-small buffers
// without writing past them, and try_decode must accept exactly what
// decode() accepts while rejecting every truncation and a wrong type tag
// without throwing.

template <class Msg>
void CheckWireSurfaces(const Msg& msg) {
  const std::vector<std::uint8_t> legacy = msg.encode();
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(legacy.size(), msg.encoded_size());

  // Byte-identical hot-path encoding; guard bytes past the end untouched.
  std::vector<std::uint8_t> hot(legacy.size() + 8, 0xab);
  const std::size_t n = msg.encode_into(hot);
  ASSERT_EQ(n, legacy.size());
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), hot.begin()));
  for (std::size_t i = n; i < hot.size(); ++i) {
    ASSERT_EQ(hot[i], 0xab) << "guard byte " << i << " clobbered";
  }

  // Every too-small output buffer is refused with 0 bytes written.
  std::vector<std::uint8_t> small(legacy.size());
  for (std::size_t len = 0; len < legacy.size(); ++len) {
    EXPECT_EQ(msg.encode_into(std::span(small.data(), len)), 0u)
        << "buffer of " << len << " accepted";
  }

  // Both decode surfaces accept the full encoding...
  Msg accepted;
  EXPECT_TRUE(Msg::try_decode(legacy, accepted));
  EXPECT_NO_THROW(Msg::decode(legacy));

  // ...and reject every proper prefix (truncated datagram).
  for (std::size_t len = 0; len < legacy.size(); ++len) {
    const std::span<const std::uint8_t> prefix(legacy.data(), len);
    Msg scratch;
    EXPECT_FALSE(Msg::try_decode(prefix, scratch)) << "prefix " << len;
    EXPECT_THROW(Msg::decode(prefix), InvariantError) << "prefix " << len;
  }

  // A wrong type tag is rejected, not misparsed.
  std::vector<std::uint8_t> wrong_tag = legacy;
  wrong_tag[0] = 0xee;
  Msg scratch;
  EXPECT_FALSE(Msg::try_decode(wrong_tag, scratch));
  EXPECT_THROW(Msg::decode(wrong_tag), InvariantError);
}

TEST(MessageHotPath, FixedTypesRoundTrip) {
  LoadInquiry inquiry;
  inquiry.seq = ~0ull;
  CheckWireSurfaces(inquiry);
  LoadInquiry inquiry_out;
  ASSERT_TRUE(LoadInquiry::try_decode(inquiry.encode(), inquiry_out));
  EXPECT_EQ(inquiry_out.seq, ~0ull);

  LoadReply reply;
  reply.seq = 0x0102030405060708ull;
  reply.queue_length = -3;  // sign must survive the u32 cast
  CheckWireSurfaces(reply);
  LoadReply reply_out;
  ASSERT_TRUE(LoadReply::try_decode(reply.encode(), reply_out));
  EXPECT_EQ(reply_out.seq, reply.seq);
  EXPECT_EQ(reply_out.queue_length, -3);

  ServiceRequest request;
  request.request_id = 0xfeedface12345678ull;
  request.service_us = 0xffffffffu;
  request.partition = 7;
  CheckWireSurfaces(request);
  ServiceRequest request_out;
  ASSERT_TRUE(ServiceRequest::try_decode(request.encode(), request_out));
  EXPECT_EQ(request_out.request_id, request.request_id);
  EXPECT_EQ(request_out.service_us, request.service_us);
  EXPECT_EQ(request_out.partition, 7u);

  ServiceResponse response;
  response.request_id = 1;
  response.server = -1;
  response.queue_at_arrival = 0x7fffffff;
  CheckWireSurfaces(response);
  ServiceResponse response_out;
  ASSERT_TRUE(ServiceResponse::try_decode(response.encode(), response_out));
  EXPECT_EQ(response_out.request_id, 1u);
  EXPECT_EQ(response_out.server, -1);
  EXPECT_EQ(response_out.queue_at_arrival, 0x7fffffff);

  Acquire acquire;
  acquire.seq = 0;  // all-zero fields still carry the tag
  CheckWireSurfaces(acquire);
  Acquire acquire_out;
  ASSERT_TRUE(Acquire::try_decode(acquire.encode(), acquire_out));
  EXPECT_EQ(acquire_out.seq, 0u);

  AcquireReply acquire_reply;
  acquire_reply.seq = 55;
  acquire_reply.server = 1000;
  CheckWireSurfaces(acquire_reply);
  AcquireReply acquire_reply_out;
  ASSERT_TRUE(
      AcquireReply::try_decode(acquire_reply.encode(), acquire_reply_out));
  EXPECT_EQ(acquire_reply_out.seq, 55u);
  EXPECT_EQ(acquire_reply_out.server, 1000);

  Release release;
  release.server = -2147483647;
  CheckWireSurfaces(release);
  Release release_out;
  ASSERT_TRUE(Release::try_decode(release.encode(), release_out));
  EXPECT_EQ(release_out.server, -2147483647);

  LoadAnnounce announce;
  announce.server = 12;
  announce.queue_length = 34;
  CheckWireSurfaces(announce);
  LoadAnnounce announce_out;
  ASSERT_TRUE(LoadAnnounce::try_decode(announce.encode(), announce_out));
  EXPECT_EQ(announce_out.server, 12);
  EXPECT_EQ(announce_out.queue_length, 34);

  Subscribe subscribe;
  subscribe.ttl_ms = 0xdeadbeefu;
  CheckWireSurfaces(subscribe);
  Subscribe subscribe_out;
  ASSERT_TRUE(Subscribe::try_decode(subscribe.encode(), subscribe_out));
  EXPECT_EQ(subscribe_out.ttl_ms, 0xdeadbeefu);
}

TEST(MessageHotPath, ElectionTypesRoundTrip) {
  VoteRequest vote_request;
  vote_request.term = 0x0102030405060708ull;
  vote_request.candidate = 3;
  CheckWireSurfaces(vote_request);
  VoteRequest vote_request_out;
  ASSERT_TRUE(VoteRequest::try_decode(vote_request.encode(), vote_request_out));
  EXPECT_EQ(vote_request_out.term, vote_request.term);
  EXPECT_EQ(vote_request_out.candidate, 3);

  VoteReply vote_reply;
  vote_reply.term = 42;
  vote_reply.voter = 4;
  vote_reply.granted = true;
  CheckWireSurfaces(vote_reply);
  VoteReply vote_reply_out;
  ASSERT_TRUE(VoteReply::try_decode(vote_reply.encode(), vote_reply_out));
  EXPECT_EQ(vote_reply_out.term, 42u);
  EXPECT_EQ(vote_reply_out.voter, 4);
  EXPECT_TRUE(vote_reply_out.granted);

  Heartbeat heartbeat;
  heartbeat.term = 43;
  heartbeat.leader = 2;
  CheckWireSurfaces(heartbeat);
  Heartbeat heartbeat_out;
  ASSERT_TRUE(Heartbeat::try_decode(heartbeat.encode(), heartbeat_out));
  EXPECT_EQ(heartbeat_out.term, 43u);
  EXPECT_EQ(heartbeat_out.leader, 2);

  HeartbeatAck ack;
  ack.term = 43;
  ack.follower = 0;
  CheckWireSurfaces(ack);
  HeartbeatAck ack_out;
  ASSERT_TRUE(HeartbeatAck::try_decode(ack.encode(), ack_out));
  EXPECT_EQ(ack_out.term, 43u);
  EXPECT_EQ(ack_out.follower, 0);

  Redirect redirect;
  redirect.seq = 77;
  redirect.term = 44;
  redirect.leader = 1;
  redirect.leader_port = 54321;
  CheckWireSurfaces(redirect);
  Redirect redirect_out;
  ASSERT_TRUE(Redirect::try_decode(redirect.encode(), redirect_out));
  EXPECT_EQ(redirect_out.seq, 77u);
  EXPECT_EQ(redirect_out.term, 44u);
  EXPECT_EQ(redirect_out.leader, 1);
  EXPECT_EQ(redirect_out.leader_port, 54321);
}

TEST(MessageHotPath, StringTypesRoundTrip) {
  Publish publish;
  publish.service = "image-store";
  publish.partition = 9;
  publish.server = 3;
  publish.service_port = 65535;
  publish.load_port = 1;
  publish.ttl_ms = 123456;
  CheckWireSurfaces(publish);
  Publish publish_out;
  ASSERT_TRUE(Publish::try_decode(publish.encode(), publish_out));
  EXPECT_EQ(publish_out.service, "image-store");
  EXPECT_EQ(publish_out.partition, 9u);
  EXPECT_EQ(publish_out.server, 3);
  EXPECT_EQ(publish_out.service_port, 65535);
  EXPECT_EQ(publish_out.load_port, 1);
  EXPECT_EQ(publish_out.ttl_ms, 123456u);

  SnapshotRequest request;
  request.seq = 77;
  request.service = "photo-album";
  CheckWireSurfaces(request);
  SnapshotRequest request_out;
  ASSERT_TRUE(SnapshotRequest::try_decode(request.encode(), request_out));
  EXPECT_EQ(request_out.seq, 77u);
  EXPECT_EQ(request_out.service, "photo-album");

  SnapshotReply reply;
  reply.seq = 78;
  for (int i = 0; i < 3; ++i) {
    Publish entry = publish;
    entry.server = i;
    reply.entries.push_back(entry);
  }
  CheckWireSurfaces(reply);
  SnapshotReply reply_out;
  ASSERT_TRUE(SnapshotReply::try_decode(reply.encode(), reply_out));
  EXPECT_EQ(reply_out.seq, 78u);
  ASSERT_EQ(reply_out.entries.size(), 3u);
  EXPECT_EQ(reply_out.entries[2].server, 2);
  EXPECT_EQ(reply_out.entries[2].service, "image-store");
}

TEST(MessageHotPath, StatsInquiryReplyRoundTrip) {
  StatsInquiry inquiry;
  inquiry.seq = 31337;
  CheckWireSurfaces(inquiry);
  StatsInquiry inquiry_out;
  ASSERT_TRUE(StatsInquiry::try_decode(inquiry.encode(), inquiry_out));
  EXPECT_EQ(inquiry_out.seq, 31337u);

  StatsReply reply;
  reply.seq = 31337;
  reply.payload = "{\"node\":\"server.0\",\"counters\":{\"served\":12}}";
  CheckWireSurfaces(reply);
  StatsReply reply_out;
  reply_out.payload = "stale";  // must be overwritten, not appended to
  ASSERT_TRUE(StatsReply::try_decode(reply.encode(), reply_out));
  EXPECT_EQ(reply_out.seq, 31337u);
  EXPECT_EQ(reply_out.payload, reply.payload);

  // Empty payload round-trips; oversized payload is refused, not truncated.
  reply.payload.clear();
  CheckWireSurfaces(reply);
  reply.payload.assign(0x10000, 'x');
  std::vector<std::uint8_t> buf(reply.payload.size() + 64);
  EXPECT_EQ(reply.encode_into(buf), 0u);

  // The two stats types must not parse as one another despite the shared
  // seq-first layout.
  StatsInquiry cross;
  EXPECT_FALSE(StatsInquiry::try_decode(StatsReply().encode(), cross));
}

TEST(MessageHotPath, TraceInquiryReplySurfaces) {
  TraceInquiry inquiry;
  inquiry.seq = 31338;
  inquiry.offset = 17;
  CheckWireSurfaces(inquiry);
  TraceInquiry inquiry_out;
  ASSERT_TRUE(TraceInquiry::try_decode(inquiry.encode(), inquiry_out));
  EXPECT_EQ(inquiry_out.seq, 31338u);
  EXPECT_EQ(inquiry_out.offset, 17u);

  TraceReply reply;
  reply.seq = 31338;
  reply.node = -1;
  reply.server_ns = -5;
  reply.total = 2;
  TraceRecordWire rec;
  rec.request_id = ~0ull;
  rec.point = 8;
  rec.node = 2147483647;
  rec.at_ns = -9;
  rec.detail = 0x7fffffffffffffffll;
  reply.records.push_back(rec);
  reply.records.emplace_back();
  CheckWireSurfaces(reply);
  TraceReply reply_out;
  reply_out.records.resize(7);  // must shrink to the decoded count
  ASSERT_TRUE(TraceReply::try_decode(reply.encode(), reply_out));
  EXPECT_EQ(reply_out.node, -1);
  EXPECT_EQ(reply_out.server_ns, -5);
  ASSERT_EQ(reply_out.records.size(), 2u);
  EXPECT_EQ(reply_out.records[0].request_id, ~0ull);
  EXPECT_EQ(reply_out.records[0].point, 8);
  EXPECT_EQ(reply_out.records[0].node, 2147483647);
  EXPECT_EQ(reply_out.records[0].at_ns, -9);
  EXPECT_EQ(reply_out.records[0].detail, 0x7fffffffffffffffll);
  EXPECT_EQ(reply_out.records[1].request_id, 0u);

  // Empty chunk (e.g. clock probe against an empty ring) round-trips.
  reply.records.clear();
  reply.total = 0;
  CheckWireSurfaces(reply);
  ASSERT_TRUE(TraceReply::try_decode(reply.encode(), reply_out));
  EXPECT_TRUE(reply_out.records.empty());
}

TEST(MessageHotPath, TraceReplyCorruptedCountRejected) {
  // A record count the remaining bytes cannot possibly hold must be
  // rejected before any storage is reserved (same defence as
  // SnapshotReply). Count u32 lives after tag + u64 seq + i32 node +
  // i64 server_ns + u32 total + u32 offset = offset 29.
  TraceReply reply;
  reply.seq = 2;
  std::vector<std::uint8_t> bytes = reply.encode();
  ASSERT_GE(bytes.size(), 33u);
  bytes[29] = 0xff;
  bytes[30] = 0xff;
  bytes[31] = 0xff;
  bytes[32] = 0xff;
  TraceReply out;
  EXPECT_FALSE(TraceReply::try_decode(bytes, out));
  EXPECT_THROW(TraceReply::decode(bytes), InvariantError);
}

TEST(MessageHotPath, DecisionTypesRoundTrip) {
  DecisionInquiry inquiry;
  inquiry.seq = ~0ull;
  inquiry.offset = 12345;
  CheckWireSurfaces(inquiry);
  DecisionInquiry inquiry_out;
  ASSERT_TRUE(DecisionInquiry::try_decode(inquiry.encode(), inquiry_out));
  EXPECT_EQ(inquiry_out.seq, ~0ull);
  EXPECT_EQ(inquiry_out.offset, 12345u);

  // Variable-size records (mixed polled counts) through every surface.
  DecisionReply reply;
  reply.seq = 9;
  reply.node = -1;
  reply.server_ns = -5;  // sign must survive
  reply.total = 3;
  for (std::uint8_t n : {std::uint8_t{0}, std::uint8_t{3},
                         std::uint8_t{kDecisionWirePollMax}}) {
    DecisionRecordWire rec;
    rec.request_id = 0xfeedface0000ull + n;
    rec.at_ns = -1000;
    rec.chosen = -1;
    rec.polled_count = n;
    rec.flags = 1;
    rec.blacklist_filtered = 255;
    for (std::uint8_t p = 0; p < n; ++p) {
      rec.polled[p].server = 0x7fffffff - p;
      rec.polled[p].queue_length = -2;
      rec.polled[p].age_ns = -42;
    }
    reply.records.push_back(rec);
  }
  CheckWireSurfaces(reply);
  DecisionReply reply_out;
  ASSERT_TRUE(DecisionReply::try_decode(reply.encode(), reply_out));
  EXPECT_EQ(reply_out.server_ns, -5);
  ASSERT_EQ(reply_out.records.size(), 3u);
  EXPECT_EQ(reply_out.records[2].polled_count, kDecisionWirePollMax);
  EXPECT_EQ(reply_out.records[2].polled[7].server, 0x7fffffff - 7);
  EXPECT_EQ(reply_out.records[2].polled[7].queue_length, -2);
  EXPECT_EQ(reply_out.records[2].polled[7].age_ns, -42);
  EXPECT_EQ(reply_out.records[0].blacklist_filtered, 255);

  // An empty chunk (the "ring is empty" reply) still round-trips.
  DecisionReply empty;
  empty.seq = 1;
  CheckWireSurfaces(empty);
}

TEST(MessageHotPath, DecisionReplyHostileInputsRejected) {
  // A record count the remaining bytes cannot possibly hold must be
  // rejected before any storage is reserved. Count u32 sits at the same
  // offset 29 as TraceReply's (tag + seq + node + server_ns + total +
  // offset).
  DecisionReply reply;
  reply.seq = 2;
  std::vector<std::uint8_t> bytes = reply.encode();
  ASSERT_GE(bytes.size(), 33u);
  for (int i = 29; i < 33; ++i) bytes[static_cast<std::size_t>(i)] = 0xff;
  DecisionReply out;
  EXPECT_FALSE(DecisionReply::try_decode(bytes, out));
  EXPECT_THROW(DecisionReply::decode(bytes), InvariantError);

  // A per-record polled count past the inline cap is hostile (it would
  // walk the reader past the record boundary): rejected, never clamped.
  DecisionReply one;
  one.seq = 3;
  one.total = 1;
  one.records.emplace_back();
  one.records.back().polled_count = 1;
  std::vector<std::uint8_t> corrupt = one.encode();
  // polled_count u8 sits after the count (33) + record header's u64 + i64 +
  // i32 = byte 53.
  ASSERT_EQ(corrupt[53], 1);
  corrupt[53] = static_cast<std::uint8_t>(kDecisionWirePollMax + 1);
  EXPECT_FALSE(DecisionReply::try_decode(corrupt, out));

  // encode_into refuses (returns 0) rather than truncating a record whose
  // in-memory polled count exceeds the wire cap.
  DecisionReply overfull;
  overfull.records.emplace_back();
  overfull.records.back().polled_count =
      static_cast<std::uint8_t>(kDecisionWirePollMax + 1);
  std::vector<std::uint8_t> big(1024);
  EXPECT_EQ(overfull.encode_into(big), 0u);
}

TEST(MessageHotPath, MaxLengthServiceString) {
  // The wire format length-prefixes strings with a u16: 65535 is the
  // longest service name that can exist on the wire.
  const std::string longest(0xffff, 's');

  Publish publish;
  publish.service = longest;
  CheckWireSurfaces(publish);
  Publish publish_out;
  ASSERT_TRUE(Publish::try_decode(publish.encode(), publish_out));
  EXPECT_EQ(publish_out.service, longest);

  SnapshotRequest request;
  request.service = longest;
  CheckWireSurfaces(request);
  SnapshotRequest request_out;
  ASSERT_TRUE(SnapshotRequest::try_decode(request.encode(), request_out));
  EXPECT_EQ(request_out.service, longest);

  // One byte longer cannot be encoded on either surface.
  request.service.push_back('s');
  std::vector<std::uint8_t> buf(request.service.size() + 64);
  EXPECT_EQ(request.encode_into(buf), 0u);
}

TEST(MessageHotPath, ZeroLengthPayloads) {
  Publish publish;  // empty service string
  CheckWireSurfaces(publish);
  Publish publish_out;
  publish_out.service = "stale";  // must be overwritten, not appended to
  ASSERT_TRUE(Publish::try_decode(publish.encode(), publish_out));
  EXPECT_TRUE(publish_out.service.empty());

  SnapshotRequest request;  // empty service = "all services"
  CheckWireSurfaces(request);

  SnapshotReply reply;  // zero entries
  reply.seq = 9;
  CheckWireSurfaces(reply);
  SnapshotReply reply_out;
  reply_out.entries.resize(4);  // must shrink to the decoded count
  ASSERT_TRUE(SnapshotReply::try_decode(reply.encode(), reply_out));
  EXPECT_EQ(reply_out.seq, 9u);
  EXPECT_TRUE(reply_out.entries.empty());

  // An entry whose service string is empty round-trips too.
  reply.entries.emplace_back();
  CheckWireSurfaces(reply);
  ASSERT_TRUE(SnapshotReply::try_decode(reply.encode(), reply_out));
  ASSERT_EQ(reply_out.entries.size(), 1u);
  EXPECT_TRUE(reply_out.entries[0].service.empty());
}

TEST(MessageHotPath, GarbageRejectedWithoutThrowing) {
  // A corrupted string length pointing past the datagram.
  Publish publish;
  publish.service = "abc";
  std::vector<std::uint8_t> bytes = publish.encode();
  bytes[1] = 0xff;  // string length low byte (u16 right after the tag)
  bytes[2] = 0xff;
  Publish publish_out;
  EXPECT_FALSE(Publish::try_decode(bytes, publish_out));
  EXPECT_THROW(Publish::decode(bytes), InvariantError);

  // A corrupted SnapshotReply entry count that the remaining bytes cannot
  // possibly hold must be rejected before any storage is reserved.
  SnapshotReply reply;
  reply.seq = 1;
  std::vector<std::uint8_t> reply_bytes = reply.encode();
  reply_bytes[9] = 0xff;  // count u32 lives after tag + u64 seq
  reply_bytes[10] = 0xff;
  reply_bytes[11] = 0xff;
  reply_bytes[12] = 0xff;
  SnapshotReply reply_out;
  EXPECT_FALSE(SnapshotReply::try_decode(reply_bytes, reply_out));
  EXPECT_THROW(SnapshotReply::decode(reply_bytes), InvariantError);

  // Random-looking bytes under every valid tag: try_decode must say false
  // or succeed, never throw or crash.
  std::vector<std::uint8_t> junk(11);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::uint8_t>(0x9e * (i + 1));
  }
  for (std::uint8_t tag = 1; tag <= 16; ++tag) {
    junk[0] = tag;
    LoadInquiry a;
    LoadReply b;
    ServiceRequest c;
    ServiceResponse d;
    Acquire e;
    AcquireReply f;
    Release g;
    Publish h;
    SnapshotRequest i2;
    SnapshotReply j;
    LoadAnnounce k;
    Subscribe l;
    StatsInquiry m2;
    StatsReply n;
    TraceInquiry o;
    TraceReply p;
    EXPECT_NO_THROW(LoadInquiry::try_decode(junk, a));
    EXPECT_NO_THROW(LoadReply::try_decode(junk, b));
    EXPECT_NO_THROW(ServiceRequest::try_decode(junk, c));
    EXPECT_NO_THROW(ServiceResponse::try_decode(junk, d));
    EXPECT_NO_THROW(Acquire::try_decode(junk, e));
    EXPECT_NO_THROW(AcquireReply::try_decode(junk, f));
    EXPECT_NO_THROW(Release::try_decode(junk, g));
    EXPECT_NO_THROW(Publish::try_decode(junk, h));
    EXPECT_NO_THROW(SnapshotRequest::try_decode(junk, i2));
    EXPECT_NO_THROW(SnapshotReply::try_decode(junk, j));
    EXPECT_NO_THROW(LoadAnnounce::try_decode(junk, k));
    EXPECT_NO_THROW(Subscribe::try_decode(junk, l));
    EXPECT_NO_THROW(StatsInquiry::try_decode(junk, m2));
    EXPECT_NO_THROW(StatsReply::try_decode(junk, n));
    EXPECT_NO_THROW(TraceInquiry::try_decode(junk, o));
    EXPECT_NO_THROW(TraceReply::try_decode(junk, p));
  }
}

}  // namespace
}  // namespace finelb::net
