#include "net/message.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace finelb::net {
namespace {

TEST(MessageTest, LoadInquiryRoundTrip) {
  LoadInquiry m;
  m.seq = 0xfeedface12345678ull;
  const auto decoded = LoadInquiry::decode(m.encode());
  EXPECT_EQ(decoded.seq, m.seq);
  EXPECT_EQ(peek_type(m.encode()), MsgType::kLoadInquiry);
}

TEST(MessageTest, LoadReplyRoundTrip) {
  LoadReply m;
  m.seq = 99;
  m.queue_length = 17;
  const auto decoded = LoadReply::decode(m.encode());
  EXPECT_EQ(decoded.seq, 99u);
  EXPECT_EQ(decoded.queue_length, 17);
}

TEST(MessageTest, ServiceRequestRoundTrip) {
  ServiceRequest m;
  m.request_id = (7ull << 40) | 12345;
  m.service_us = 22200;
  m.partition = 3;
  const auto decoded = ServiceRequest::decode(m.encode());
  EXPECT_EQ(decoded.request_id, m.request_id);
  EXPECT_EQ(decoded.service_us, 22200u);
  EXPECT_EQ(decoded.partition, 3u);
}

TEST(MessageTest, ServiceResponseRoundTrip) {
  ServiceResponse m;
  m.request_id = 42;
  m.server = 11;
  m.queue_at_arrival = 5;
  const auto decoded = ServiceResponse::decode(m.encode());
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.server, 11);
  EXPECT_EQ(decoded.queue_at_arrival, 5);
}

TEST(MessageTest, ManagerProtocolRoundTrips) {
  Acquire a;
  a.seq = 1001;
  EXPECT_EQ(Acquire::decode(a.encode()).seq, 1001u);

  AcquireReply r;
  r.seq = 1001;
  r.server = 9;
  const auto decoded = AcquireReply::decode(r.encode());
  EXPECT_EQ(decoded.seq, 1001u);
  EXPECT_EQ(decoded.server, 9);

  Release rel;
  rel.server = 9;
  EXPECT_EQ(Release::decode(rel.encode()).server, 9);
}

TEST(MessageTest, PublishRoundTrip) {
  Publish m;
  m.service = "photo-album";
  m.partition = 2;
  m.server = 14;
  m.service_port = 40001;
  m.load_port = 40002;
  m.ttl_ms = 2000;
  const auto decoded = Publish::decode(m.encode());
  EXPECT_EQ(decoded.service, "photo-album");
  EXPECT_EQ(decoded.partition, 2u);
  EXPECT_EQ(decoded.server, 14);
  EXPECT_EQ(decoded.service_port, 40001);
  EXPECT_EQ(decoded.load_port, 40002);
  EXPECT_EQ(decoded.ttl_ms, 2000u);
}

TEST(MessageTest, SnapshotRoundTrip) {
  SnapshotRequest req;
  req.seq = 5;
  req.service = "experiment";
  const auto dreq = SnapshotRequest::decode(req.encode());
  EXPECT_EQ(dreq.seq, 5u);
  EXPECT_EQ(dreq.service, "experiment");

  SnapshotReply reply;
  reply.seq = 5;
  for (int i = 0; i < 16; ++i) {
    Publish p;
    p.service = "experiment";
    p.server = i;
    p.service_port = static_cast<std::uint16_t>(40000 + 2 * i);
    p.load_port = static_cast<std::uint16_t>(40001 + 2 * i);
    p.ttl_ms = 1000;
    reply.entries.push_back(p);
  }
  const auto dreply = SnapshotReply::decode(reply.encode());
  EXPECT_EQ(dreply.seq, 5u);
  ASSERT_EQ(dreply.entries.size(), 16u);
  EXPECT_EQ(dreply.entries[7].server, 7);
  EXPECT_EQ(dreply.entries[7].service_port, 40014);
}

TEST(MessageTest, EmptySnapshotReply) {
  SnapshotReply reply;
  reply.seq = 1;
  const auto decoded = SnapshotReply::decode(reply.encode());
  EXPECT_TRUE(decoded.entries.empty());
}

TEST(MessageTest, WrongTypeTagThrows) {
  LoadInquiry inquiry;
  inquiry.seq = 1;
  const auto bytes = inquiry.encode();
  EXPECT_THROW(LoadReply::decode(bytes), InvariantError);
  EXPECT_THROW(ServiceRequest::decode(bytes), InvariantError);
}

TEST(MessageTest, EmptyDatagramThrows) {
  EXPECT_THROW(peek_type({}), InvariantError);
}

// Truncation property sweep: every message type must reject every proper
// prefix of its encoding rather than read garbage.
class MessageTruncation : public ::testing::TestWithParam<int> {};

TEST_P(MessageTruncation, AllPrefixesRejected) {
  std::vector<std::uint8_t> bytes;
  switch (GetParam()) {
    case 0: {
      LoadInquiry m;
      m.seq = 7;
      bytes = m.encode();
      break;
    }
    case 1: {
      LoadReply m;
      m.seq = 7;
      m.queue_length = 3;
      bytes = m.encode();
      break;
    }
    case 2: {
      ServiceRequest m;
      m.request_id = 7;
      bytes = m.encode();
      break;
    }
    case 3: {
      ServiceResponse m;
      m.request_id = 7;
      bytes = m.encode();
      break;
    }
    case 4: {
      Publish m;
      m.service = "svc";
      bytes = m.encode();
      break;
    }
  }
  const std::span<const std::uint8_t> all(bytes);
  for (std::size_t len = 1; len < bytes.size(); ++len) {
    const auto prefix = all.subspan(0, len);
    switch (GetParam()) {
      case 0:
        EXPECT_THROW(LoadInquiry::decode(prefix), InvariantError);
        break;
      case 1:
        EXPECT_THROW(LoadReply::decode(prefix), InvariantError);
        break;
      case 2:
        EXPECT_THROW(ServiceRequest::decode(prefix), InvariantError);
        break;
      case 3:
        EXPECT_THROW(ServiceResponse::decode(prefix), InvariantError);
        break;
      case 4:
        EXPECT_THROW(Publish::decode(prefix), InvariantError);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMessageTypes, MessageTruncation,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace finelb::net
