#include "stats/queueing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace finelb::queueing {
namespace {

TEST(Mm1Test, PmfIsGeometricAndSumsToOne) {
  const double rho = 0.7;
  double total = 0.0;
  for (int k = 0; k < 200; ++k) {
    const double p = mm1_queue_length_pmf(rho, k);
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(mm1_queue_length_pmf(rho, 0), 0.3);
  EXPECT_DOUBLE_EQ(mm1_queue_length_pmf(rho, 1), 0.3 * 0.7);
}

TEST(Mm1Test, MeanQueueLength) {
  EXPECT_DOUBLE_EQ(mm1_mean_queue_length(0.5), 1.0);
  EXPECT_NEAR(mm1_mean_queue_length(0.9), 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(mm1_mean_queue_length(0.0), 0.0);
}

TEST(Mm1Test, MeanResponseTime) {
  // s / (1 - rho): 50 ms service at 90% load -> 500 ms.
  EXPECT_NEAR(mm1_mean_response_time(0.9, 0.05), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(mm1_mean_response_time(0.0, 0.05), 0.05);
}

TEST(Mm1Test, InvalidRhoThrows) {
  EXPECT_THROW(mm1_mean_queue_length(1.0), finelb::InvariantError);
  EXPECT_THROW(mm1_mean_queue_length(-0.1), finelb::InvariantError);
  EXPECT_THROW(mm1_queue_length_pmf(0.5, -1), finelb::InvariantError);
}

TEST(Equation1Test, PaperValueAtHalfLoad) {
  // The paper quotes 1.33 for rho = 0.5 (Figure 2 discussion).
  EXPECT_NEAR(stale_index_inaccuracy_bound(0.5), 4.0 / 3.0, 1e-12);
}

TEST(Equation1Test, ClosedFormMatchesSeries) {
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(stale_index_inaccuracy_series(rho),
                stale_index_inaccuracy_bound(rho), 1e-6)
        << "rho=" << rho;
  }
}

TEST(Equation1Test, GrowsWithLoad) {
  double prev = 0.0;
  for (double rho = 0.0; rho < 0.95; rho += 0.05) {
    const double bound = stale_index_inaccuracy_bound(rho);
    EXPECT_GE(bound, prev);
    prev = bound;
  }
  // At 90% load the bound is large (~9.47) - the paper's "error of around
  // 3 in the load index" at delay 10x is still below this asymptote.
  EXPECT_NEAR(stale_index_inaccuracy_bound(0.9), 2 * 0.9 / (1 - 0.81), 1e-12);
}

TEST(Mg1Test, ReducesToMm1ForExponentialService) {
  // cv = 1 makes Pollaczek-Khinchine collapse to s/(1-rho).
  for (const double rho : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(mg1_mean_response_time(rho, 0.05, 1.0),
                mm1_mean_response_time(rho, 0.05), 1e-12);
  }
}

TEST(Mg1Test, DeterministicServiceHalvesWaiting) {
  const double rho = 0.8;
  const double s = 0.02;
  const double wait_mm1 = mm1_mean_response_time(rho, s) - s;
  const double wait_md1 = mg1_mean_response_time(rho, s, 0.0) - s;
  EXPECT_NEAR(wait_md1, wait_mm1 / 2.0, 1e-12);
}

TEST(Mg1Test, HighVarianceInflatesWaiting) {
  const double low = mg1_mean_response_time(0.8, 0.0289, 0.5);
  const double high = mg1_mean_response_time(0.8, 0.0289, 2.18);
  EXPECT_GT(high, low);
}

TEST(ErlangCTest, SingleServerEqualsRho) {
  // For c = 1 the waiting probability is exactly rho.
  for (const double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c(1, rho), rho, 1e-12);
  }
}

TEST(ErlangCTest, KnownTableValue) {
  // Classic teletraffic table: c = 2, offered load a = 1.0 -> C(2,1) = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-9);
}

TEST(MmcTest, ReducesToMm1ForOneServer) {
  EXPECT_NEAR(mmc_mean_response_time(1, 0.9, 0.05),
              mm1_mean_response_time(0.9, 0.05), 1e-9);
}

TEST(MmcTest, PoolingBeatsPartitioning) {
  // An M/M/16 system always beats 16 separate M/M/1 queues at equal rho.
  const double pooled = mmc_mean_response_time(16, 0.9, 0.05);
  const double partitioned = mm1_mean_response_time(0.9, 0.05);
  EXPECT_LT(pooled, partitioned);
  EXPECT_GT(pooled, 0.05);  // cannot beat bare service time
}

}  // namespace
}  // namespace finelb::queueing
