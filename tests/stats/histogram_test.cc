#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace finelb {
namespace {

TEST(LatencyHistogramTest, EmptyQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(1.0), 0.0);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.add(10.0);
  EXPECT_EQ(h.count(), 1);
  // Log-bucketed: quantile is the bucket representative, within ~3%.
  EXPECT_NEAR(h.quantile(0.5), 10.0, 0.35);
  EXPECT_DOUBLE_EQ(h.recorded_min(), 10.0);
  EXPECT_DOUBLE_EQ(h.recorded_max(), 10.0);
}

TEST(LatencyHistogramTest, QuantileAccuracyOnUniformData) {
  LatencyHistogram h;
  Rng rng(1);
  const int n = 100000;
  for (int i = 0; i < n; ++i) h.add(rng.uniform(1.0, 101.0));
  // Relative error bound for 32 sub-buckets is ~3%; allow 5%.
  EXPECT_NEAR(h.p50(), 51.0, 51.0 * 0.05);
  EXPECT_NEAR(h.p95(), 96.0, 96.0 * 0.05);
  EXPECT_NEAR(h.p99(), 100.0, 100.0 * 0.05);
}

TEST(LatencyHistogramTest, QuantileMonotoneInQ) {
  LatencyHistogram h;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(5.0));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LatencyHistogramTest, FractionAboveThreshold) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(8.0);
  EXPECT_NEAR(h.fraction_above(1.0), 0.10, 1e-9);
  EXPECT_NEAR(h.fraction_above(10.0), 0.0, 1e-9);
}

TEST(LatencyHistogramTest, ZeroAndNegativeValuesLandInZeroBucket) {
  LatencyHistogram h;
  h.add(0.0);
  h.add(-3.0);
  h.add(1.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.quantile(0.3), 0.0);
  EXPECT_DOUBLE_EQ(h.recorded_min(), 0.0);
}

TEST(LatencyHistogramTest, MergeEquivalentToCombinedAdds) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram whole;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
  }
  EXPECT_DOUBLE_EQ(a.recorded_min(), whole.recorded_min());
  EXPECT_DOUBLE_EQ(a.recorded_max(), whole.recorded_max());
}

TEST(LatencyHistogramTest, MergeResolutionMismatchThrows) {
  LatencyHistogram a(5);
  LatencyHistogram b(6);
  EXPECT_THROW(a.merge(b), InvariantError);
}

TEST(LatencyHistogramTest, InvalidQuantileThrows) {
  LatencyHistogram h;
  h.add(1.0);
  EXPECT_THROW(h.quantile(-0.1), InvariantError);
  EXPECT_THROW(h.quantile(1.1), InvariantError);
}

TEST(LatencyHistogramTest, WideDynamicRange) {
  LatencyHistogram h;
  h.add(1e-6);  // 1 us in seconds
  h.add(1e3);   // ~17 minutes
  EXPECT_EQ(h.count(), 2);
  EXPECT_NEAR(h.quantile(0.25), 1e-6, 1e-6 * 0.05);
  EXPECT_NEAR(h.quantile(1.0), 1e3, 1e3 * 0.05);
}

class HistogramRelativeError : public ::testing::TestWithParam<double> {};

TEST_P(HistogramRelativeError, SingleValueRepresentativeWithin4Percent) {
  const double value = GetParam();
  LatencyHistogram h;
  h.add(value);
  EXPECT_NEAR(h.quantile(0.5), value, value * 0.04)
      << "value=" << value;
}

INSTANTIATE_TEST_SUITE_P(AcrossMagnitudes, HistogramRelativeError,
                         ::testing::Values(1e-5, 3.7e-4, 0.002, 0.13, 1.0,
                                           22.2, 517.0, 1e4));

}  // namespace
}  // namespace finelb
