#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/log_buckets.h"

#include "common/check.h"
#include "common/rng.h"

namespace finelb {
namespace {

TEST(LatencyHistogramTest, EmptyQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(1.0), 0.0);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.add(10.0);
  EXPECT_EQ(h.count(), 1);
  // Log-bucketed: quantile is the bucket representative, within ~3%.
  EXPECT_NEAR(h.quantile(0.5), 10.0, 0.35);
  EXPECT_DOUBLE_EQ(h.recorded_min(), 10.0);
  EXPECT_DOUBLE_EQ(h.recorded_max(), 10.0);
}

TEST(LatencyHistogramTest, QuantileAccuracyOnUniformData) {
  LatencyHistogram h;
  Rng rng(1);
  const int n = 100000;
  for (int i = 0; i < n; ++i) h.add(rng.uniform(1.0, 101.0));
  // Relative error bound for 32 sub-buckets is ~3%; allow 5%.
  EXPECT_NEAR(h.p50(), 51.0, 51.0 * 0.05);
  EXPECT_NEAR(h.p95(), 96.0, 96.0 * 0.05);
  EXPECT_NEAR(h.p99(), 100.0, 100.0 * 0.05);
}

TEST(LatencyHistogramTest, QuantileMonotoneInQ) {
  LatencyHistogram h;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(5.0));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LatencyHistogramTest, FractionAboveThreshold) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(8.0);
  EXPECT_NEAR(h.fraction_above(1.0), 0.10, 1e-9);
  EXPECT_NEAR(h.fraction_above(10.0), 0.0, 1e-9);
}

TEST(LatencyHistogramTest, ZeroAndNegativeValuesLandInZeroBucket) {
  LatencyHistogram h;
  h.add(0.0);
  h.add(-3.0);
  h.add(1.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.quantile(0.3), 0.0);
  EXPECT_DOUBLE_EQ(h.recorded_min(), 0.0);
}

TEST(LatencyHistogramTest, MergeEquivalentToCombinedAdds) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram whole;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
  }
  EXPECT_DOUBLE_EQ(a.recorded_min(), whole.recorded_min());
  EXPECT_DOUBLE_EQ(a.recorded_max(), whole.recorded_max());
}

TEST(LatencyHistogramTest, MergeResolutionMismatchThrows) {
  LatencyHistogram a(5);
  LatencyHistogram b(6);
  EXPECT_THROW(a.merge(b), InvariantError);
}

TEST(LatencyHistogramTest, InvalidQuantileThrows) {
  LatencyHistogram h;
  h.add(1.0);
  EXPECT_THROW(h.quantile(-0.1), InvariantError);
  EXPECT_THROW(h.quantile(1.1), InvariantError);
}

TEST(LatencyHistogramTest, NanQuantileThrows) {
  LatencyHistogram h;
  h.add(1.0);
  EXPECT_THROW(h.quantile(std::numeric_limits<double>::quiet_NaN()),
               InvariantError);
  // Out-of-range q must throw even when the histogram is empty: validation
  // precedes the empty-histogram shortcut.
  LatencyHistogram empty;
  EXPECT_THROW(empty.quantile(2.0), InvariantError);
  EXPECT_THROW(empty.quantile(std::numeric_limits<double>::quiet_NaN()),
               InvariantError);
}

TEST(LatencyHistogramTest, EmptyExtremeQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.recorded_min(), 0.0);
  EXPECT_DOUBLE_EQ(h.recorded_max(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleExtremeQuantilesAgree) {
  LatencyHistogram h;
  h.add(10.0);
  // With one sample every quantile lands in the same bucket: q=0, q=0.5 and
  // q=1 must return the identical representative.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(0.5));
  EXPECT_NEAR(h.quantile(1.0), 10.0, 0.35);
}

TEST(LatencyHistogramTest, ExtremeQuantilesBracketDistribution) {
  LatencyHistogram h;
  for (const double v : {1.0, 2.0, 4.0, 8.0, 16.0}) h.add(v);
  // q=0 is the representative of the lowest occupied bucket, q=1 of the
  // highest; bucket representatives stay within bucket bounds (factor 2).
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LT(h.quantile(0.0), 2.0);
  EXPECT_GE(h.quantile(1.0), 16.0);
  EXPECT_LT(h.quantile(1.0), 32.0);
}

TEST(LogBucketingTest, RoundTripsValuesThroughBucketBounds) {
  const LogBucketing scheme{5, -40, 40};
  for (const double v : {1e-9, 4.2e-3, 0.77, 1.0, 13.0, 5e8}) {
    const std::size_t i = scheme.index(v);
    EXPECT_LE(scheme.lower(i), v) << v;
    EXPECT_GT(scheme.upper(i), v) << v;
    const double rep = scheme.representative(i);
    EXPECT_GE(rep, scheme.lower(i));
    EXPECT_LE(rep, scheme.upper(i));
  }
  EXPECT_EQ(scheme.index(0.0), 0u);
  EXPECT_EQ(scheme.index(-5.0), 0u);
  EXPECT_DOUBLE_EQ(scheme.representative(0), 0.0);
}

TEST(LogBucketingTest, OutOfRangeExponentsClampToEdgeBuckets) {
  const LogBucketing scheme{4, -20, 30};
  // Clamping pins the exponent band but keeps the mantissa's sub-bucket.
  const auto band = [&](double v) {
    return (static_cast<std::int64_t>(scheme.index(v)) - 1) /
           scheme.sub_bucket_count();
  };
  EXPECT_EQ(band(1e-300), 0);
  EXPECT_EQ(band(1e300), scheme.max_exp - scheme.min_exp);
  EXPECT_LT(scheme.index(1e300), scheme.bucket_count());
  EXPECT_GT(scheme.upper(scheme.bucket_count() - 1),
            scheme.lower(scheme.bucket_count() - 1));
}

TEST(LatencyHistogramTest, WideDynamicRange) {
  LatencyHistogram h;
  h.add(1e-6);  // 1 us in seconds
  h.add(1e3);   // ~17 minutes
  EXPECT_EQ(h.count(), 2);
  EXPECT_NEAR(h.quantile(0.25), 1e-6, 1e-6 * 0.05);
  EXPECT_NEAR(h.quantile(1.0), 1e3, 1e3 * 0.05);
}

class HistogramRelativeError : public ::testing::TestWithParam<double> {};

TEST_P(HistogramRelativeError, SingleValueRepresentativeWithin4Percent) {
  const double value = GetParam();
  LatencyHistogram h;
  h.add(value);
  EXPECT_NEAR(h.quantile(0.5), value, value * 0.04)
      << "value=" << value;
}

INSTANTIATE_TEST_SUITE_P(AcrossMagnitudes, HistogramRelativeError,
                         ::testing::Values(1e-5, 3.7e-4, 0.002, 0.13, 1.0,
                                           22.2, 517.0, 1e4));

}  // namespace
}  // namespace finelb
