#include "stats/accumulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace finelb {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, KnownSequence) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, SampleVarianceUsesNMinusOne) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 1.0);
}

TEST(AccumulatorTest, SingleSampleHasZeroVariance) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  Rng rng(1);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmptySides) {
  Accumulator a;
  Accumulator b;
  b.add(5.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  Accumulator c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 1);
}

TEST(AccumulatorTest, CvIsStdOverMean) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.cv(), std::sqrt(2.0) / 2.0);
}

TEST(AccumulatorTest, NumericalStabilityWithLargeOffset) {
  Accumulator acc;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) {
    acc.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(acc.mean(), offset, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(TimeWeightedTest, ConstantSignal) {
  TimeWeighted tw(0.0, 5.0);
  EXPECT_DOUBLE_EQ(tw.time_average(10.0), 5.0);
}

TEST(TimeWeightedTest, StepFunction) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(2.0, 4.0);  // 0 on [0,2), 4 from t=2
  tw.update(6.0, 1.0);  // 4 on [2,6), 1 from t=6
  // integral over [0,8): 0*2 + 4*4 + 1*2 = 18; average = 18/8
  EXPECT_DOUBLE_EQ(tw.time_average(8.0), 18.0 / 8.0);
  EXPECT_DOUBLE_EQ(tw.current(), 1.0);
}

TEST(TimeWeightedTest, OutOfOrderUpdateThrows) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(5.0, 1.0);
  EXPECT_THROW(tw.update(4.0, 2.0), InvariantError);
  EXPECT_THROW(tw.time_average(4.0), InvariantError);
}

TEST(TimeWeightedTest, ZeroSpanReturnsCurrent) {
  TimeWeighted tw(3.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.time_average(3.0), 7.0);
}

}  // namespace
}  // namespace finelb
