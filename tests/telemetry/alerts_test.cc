#include "telemetry/alerts.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/client_node.h"
#include "cluster/server_node.h"
#include "fault/fault.h"
#include "telemetry/metrics.h"
#include "workload/catalog.h"

namespace finelb::telemetry {
namespace {

MetricsSnapshot snapshot_with_gauge(const std::string& node,
                                    const std::string& name,
                                    std::int64_t value) {
  MetricsSnapshot snap;
  snap.node = node;
  snap.gauges.emplace_back(name, value);
  return snap;
}

MetricsSnapshot snapshot_with_counter(const std::string& node,
                                      const std::string& name,
                                      std::int64_t value) {
  MetricsSnapshot snap;
  snap.node = node;
  snap.counters.emplace_back(name, value);
  return snap;
}

bool fired(const std::vector<Alert>& alerts, const std::string& rule) {
  for (const Alert& alert : alerts) {
    if (alert.rule == rule) return true;
  }
  return false;
}

TEST(AlertEngineTest, QueueOverloadFiresOnInstantaneousDepth) {
  AlertEngine engine;
  const auto below = snapshot_with_gauge("server.0", "queue_depth", 63);
  EXPECT_FALSE(fired(engine.evaluate(below), "queue_overload"));
  const auto at = snapshot_with_gauge("server.0", "queue_depth", 64);
  EXPECT_TRUE(fired(engine.evaluate(at), "queue_overload"));
}

TEST(AlertEngineTest, DeltaRulesSeedOnFirstEvaluation) {
  AlertEngine engine;
  // First sighting of the node: a huge counter reading must only seed the
  // baseline, never fire — these are spike detectors, not lifetime alarms.
  const auto first =
      snapshot_with_counter("client.1", "blacklist_insertions", 1000);
  EXPECT_FALSE(fired(engine.evaluate(first), "blacklist_spike"));
  // No growth: still quiet.
  EXPECT_FALSE(fired(engine.evaluate(first), "blacklist_spike"));
  // Delta of 3 since the last evaluation: fires.
  const auto spike =
      snapshot_with_counter("client.1", "blacklist_insertions", 1003);
  const auto alerts = engine.evaluate(spike);
  ASSERT_TRUE(fired(alerts, "blacklist_spike"));
  EXPECT_DOUBLE_EQ(alerts[0].value, 3.0);
}

TEST(AlertEngineTest, QueueGrowthFiresOnDeltaBelowAbsoluteCeiling) {
  AlertEngine engine;
  engine.evaluate(snapshot_with_gauge("server.2", "queue_depth", 4));
  const auto grown = snapshot_with_gauge("server.2", "queue_depth", 40);
  const auto alerts = engine.evaluate(grown);
  EXPECT_TRUE(fired(alerts, "queue_growth"));
  EXPECT_FALSE(fired(alerts, "queue_overload"));  // 40 < 64
}

TEST(AlertEngineTest, ElectionChurnReadsHaCounters) {
  AlertEngine engine;
  engine.evaluate(snapshot_with_counter("replica.0", "ha.leadership_gains", 1));
  // One more election since the last scrape: healthy (threshold 2).
  EXPECT_FALSE(fired(
      engine.evaluate(
          snapshot_with_counter("replica.0", "ha.leadership_gains", 2)),
      "election_churn"));
  // Two elections in one scrape interval: flapping.
  EXPECT_TRUE(fired(
      engine.evaluate(
          snapshot_with_counter("replica.0", "ha.leadership_gains", 4)),
      "election_churn"));
}

TEST(AlertEngineTest, DecisionMistakeRateFiresOnValue) {
  AlertEngine engine;
  MetricsSnapshot snap;
  snap.node = "client.0";
  snap.values.emplace_back("decision_mistake_rate", 0.6);
  EXPECT_TRUE(fired(engine.evaluate(snap), "decision_mistakes"));
  snap.values[0].second = 0.4;
  EXPECT_FALSE(fired(engine.evaluate(snap), "decision_mistakes"));
}

TEST(AlertEngineTest, NodesTrackIndependentBaselines) {
  AlertEngine engine;
  engine.evaluate(snapshot_with_counter("client.0", "blacklist_insertions", 0));
  engine.evaluate(snapshot_with_counter("client.1", "blacklist_insertions", 0));
  // Only client.1 spikes; client.0 must stay quiet.
  std::vector<MetricsSnapshot> cluster = {
      snapshot_with_counter("client.0", "blacklist_insertions", 1),
      snapshot_with_counter("client.1", "blacklist_insertions", 9)};
  const auto alerts = engine.evaluate_cluster(cluster);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "blacklist_spike");
  EXPECT_EQ(alerts[0].node, "client.1");
}

TEST(AlertEngineTest, ThresholdsDisableRules) {
  AlertThresholds off;
  off.queue_depth = 0;
  off.queue_growth = 0;
  off.blacklist_spike = 0;
  off.election_churn = 0;
  off.mistake_rate = 2.0;  // > 1 disables (rates live in [0, 1])
  AlertEngine engine(off);
  MetricsSnapshot snap;
  snap.node = "n";
  snap.gauges.emplace_back("queue_depth", 1 << 20);
  snap.counters.emplace_back("blacklist_insertions", 1 << 20);
  snap.counters.emplace_back("ha.leadership_gains", 1 << 20);
  snap.values.emplace_back("decision_mistake_rate", 1.0);
  engine.evaluate(snap);  // seed
  EXPECT_TRUE(engine.evaluate(snap).empty());
}

TEST(AlertExportTest, SameAlertVisibleInJsonAndPrometheus) {
  Alert alert;
  alert.rule = "queue_overload";
  alert.node = "server.3";
  alert.value = 70;
  alert.threshold = 64;
  alert.message = "queue depth on server.3: 70 (threshold 64)";

  const std::string json = alerts_to_json({alert});
  EXPECT_NE(json.find("\"rule\":\"queue_overload\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"server.3\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":70"), std::string::npos);
  EXPECT_NE(json.find("\"threshold\":64"), std::string::npos);

  const std::string prom = alerts_to_prometheus({alert});
  EXPECT_NE(prom.find("# TYPE finelb_alert_firing gauge"), std::string::npos);
  EXPECT_NE(
      prom.find(
          "finelb_alert_firing{rule=\"queue_overload\",node=\"server.3\"} 1"),
      std::string::npos);

  // An empty firing set still exposes the gauge family (scrapers see "no
  // alerts" rather than a missing metric).
  EXPECT_EQ(alerts_to_prometheus({}), "# TYPE finelb_alert_firing gauge\n");
  EXPECT_EQ(alerts_to_json({}), "{\"alerts\":[]}");
}

// End to end: a live client dispatching into a cluster whose second server
// drops every datagram must blacklist it repeatedly; scraping the client's
// registry across the run fires blacklist_spike, visible on both the JSON
// and the Prometheus export path (the ISSUE acceptance criterion).
TEST(AlertEngineTest, FaultInjectedRunFiresOnBothExportPaths) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  std::vector<std::unique_ptr<cluster::ServerNode>> servers;
  std::vector<cluster::ServerEndpoints> endpoints;
  for (int s = 0; s < 2; ++s) {
    cluster::ServerOptions opts;
    opts.id = s;
    opts.inject_busy_reply_delay = false;
    opts.seed = 100 + static_cast<std::uint64_t>(s);
    if (s == 1) {
      opts.fault = std::make_shared<fault::FaultInjector>(
          fault::FaultSpec::symmetric_loss(1.0));
    }
    servers.push_back(std::make_unique<cluster::ServerNode>(opts));
    servers.back()->start();
    endpoints.push_back({servers.back()->id(),
                         servers.back()->service_address(),
                         servers.back()->load_address()});
  }

  cluster::ClientOptions copts;
  copts.id = 1;
  copts.policy = PolicyConfig::random();  // keeps dispatching to the dead one
  copts.servers = endpoints;
  copts.total_requests = 60;
  copts.warmup_requests = 0;
  copts.seed = 7;
  copts.response_timeout = 30 * kMillisecond;
  copts.blacklist_cooldown = 10 * kMillisecond;  // short: repeated insertions
  copts.blacklist_after = 1;
  static const Workload workload = make_poisson_exp(0.002);
  cluster::ClientNode client(copts, workload.make_source(1.0, 900));
  client.run();
  for (auto& server : servers) server->stop();
  ASSERT_GE(client.stats().blacklist_insertions, 3)
      << "fault injection did not blacklist the dead server";

  AlertEngine engine;
  // Pre-run scrape baseline (all counters zero), then the post-run scrape.
  MetricsSnapshot baseline;
  baseline.node = "client.1";
  baseline.counters.emplace_back("blacklist_insertions", 0);
  EXPECT_TRUE(engine.evaluate(baseline).empty());
  const auto alerts = engine.evaluate(client.metrics().snapshot("client.1"));
  ASSERT_TRUE(fired(alerts, "blacklist_spike"));

  const std::string json = alerts_to_json(alerts);
  EXPECT_NE(json.find("\"rule\":\"blacklist_spike\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"node\":\"client.1\""), std::string::npos) << json;
  const std::string prom = alerts_to_prometheus(alerts);
  EXPECT_NE(
      prom.find(
          "finelb_alert_firing{rule=\"blacklist_spike\",node=\"client.1\"} 1"),
      std::string::npos)
      << prom;
}

}  // namespace
}  // namespace finelb::telemetry
