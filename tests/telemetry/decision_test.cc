#include "telemetry/decision.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/selection.h"
#include "telemetry/merge.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace finelb::telemetry {
namespace {

std::vector<ServerLoad> make_loads(std::initializer_list<std::int32_t> qlens,
                                   std::int64_t measured_at = 0) {
  std::vector<ServerLoad> loads;
  ServerId id = 0;
  for (const std::int32_t q : qlens) {
    loads.push_back({id++, q, measured_at});
  }
  return loads;
}

TEST(DecisionRingTest, SamplingKnob) {
  DecisionRing off(64, 0);
  EXPECT_FALSE(off.sampled(0));
  EXPECT_FALSE(off.sampled(16));
  EXPECT_FALSE(off.active());
  EXPECT_EQ(off.sink(), nullptr);

  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  DecisionRing every16(64, 16);
  EXPECT_TRUE(every16.sampled(0));
  EXPECT_TRUE(every16.sampled(32));
  EXPECT_FALSE(every16.sampled(33));
  EXPECT_TRUE(every16.active());
  EXPECT_NE(every16.sink(), nullptr);
  DecisionRing all(64, 1);
  EXPECT_TRUE(all.sampled(7));
}

TEST(DecisionRingTest, InactiveRingRecordsNothing) {
  DecisionRing ring(8, 0);
  DecisionRecord rec;
  rec.request_id = 7;
  ring.record_decision(rec);
  EXPECT_TRUE(ring.snapshot().empty());
}

// The choke point fills the record: polled set with reported loads and
// report ages, the winner, and the blacklist/blind flags.
TEST(DecisionRingTest, ChokePointRecordsPolledSetAndWinner) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  DecisionRing ring(16, 1);
  const auto loads = make_loads({5, 2, 9}, /*measured_at=*/400);
  DecisionContext ctx;
  ctx.request_id = 42;
  ctx.now_ns = 1000;
  ctx.blacklist_filtered = 3;
  ctx.sink = ring.sink();
  Rng rng(1);
  const ServerId chosen = pick_least_loaded(loads, rng, ctx);
  EXPECT_EQ(chosen, 1);  // unique minimum, no tie-break randomness

  const std::vector<DecisionRecord> records = ring.snapshot();
  ASSERT_EQ(records.size(), 1u);
  const DecisionRecord& rec = records[0];
  EXPECT_EQ(rec.request_id, 42u);
  EXPECT_EQ(rec.at_ns, 1000);
  EXPECT_EQ(rec.chosen, 1);
  EXPECT_FALSE(rec.blind_fallback);
  EXPECT_EQ(rec.blacklist_filtered, 3);
  ASSERT_EQ(rec.polled_count, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.polled[i].server, loads[i].server);
    EXPECT_EQ(rec.polled[i].queue_length, loads[i].queue_length);
    EXPECT_EQ(rec.polled[i].age_ns, 600);  // now - measured_at
  }
}

TEST(DecisionRingTest, BlindFallbackRecordsEmptyPolledSet) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  DecisionRing ring(16, 1);
  const std::vector<ServerId> candidates = {4};
  DecisionContext ctx;
  ctx.request_id = 9;
  ctx.now_ns = 50;
  ctx.sink = ring.sink();
  Rng rng(2);
  EXPECT_EQ(pick_random_fallback(candidates, rng, ctx), 4);

  const std::vector<DecisionRecord> records = ring.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].blind_fallback);
  EXPECT_EQ(records[0].chosen, 4);
  EXPECT_EQ(records[0].polled_count, 0);
}

// Poll sets beyond kDecisionPollMax truncate the inline array; the paper
// studies d <= 8, so only the record keeps fewer entries, never the choice.
TEST(DecisionRingTest, OversizedPollSetTruncatesRecordNotChoice) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  DecisionRing ring(16, 1);
  auto loads = make_loads({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  DecisionContext ctx;
  ctx.request_id = 1;
  ctx.sink = ring.sink();
  Rng rng(3);
  EXPECT_EQ(pick_least_loaded(loads, rng, ctx), 9);  // true min, index 9
  const std::vector<DecisionRecord> records = ring.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].polled_count, kDecisionPollMax);
  EXPECT_EQ(records[0].chosen, 9);
}

// Recording must not perturb selection: the recorded overloads consume the
// RNG exactly like the unrecorded ones, so a seeded run reproduces
// bit-identically with auditing on or off.
TEST(DecisionRingTest, RecordingDoesNotPerturbRngConsumption) {
  const auto loads = make_loads({3, 3, 3, 3});  // all ties: RNG-heavy path
  const std::vector<ServerId> candidates = {0, 1, 2, 3};
  DecisionRing ring(64, 1);
  DecisionContext ctx;
  ctx.sink = ring.sink();

  Rng bare(11);
  Rng audited(11);
  for (int i = 0; i < 64; ++i) {
    ctx.request_id = static_cast<std::uint64_t>(i);
    EXPECT_EQ(pick_least_loaded(loads, bare),
              pick_least_loaded(loads, audited, ctx));
    EXPECT_EQ(pick_random(candidates, bare),
              pick_random_fallback(candidates, audited, ctx));
  }
}

TEST(DecisionRingTest, WrapKeepsNewestRecords) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  DecisionRing ring(8, 1);
  for (int i = 0; i < 20; ++i) {
    DecisionRecord rec;
    rec.request_id = static_cast<std::uint64_t>(i);
    ring.record_decision(rec);
  }
  const std::vector<DecisionRecord> records = ring.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].request_id, 12 + i);  // oldest-first, newest 8
  }
}

// Writers hammering the ring while a reader snapshots: every returned
// record must be one some writer actually produced, never a mix of two
// generations. Writers tag every word of the record with the same value, so
// a torn record is directly detectable. Run under TSan via `-L runtime`.
TEST(DecisionRingConcurrencyTest, SnapshotNeverReturnsTornRecords) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  DecisionRing ring(32, 1);  // small ring: constant overwriting
  constexpr int kWriters = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kIters; ++i) {
        const auto tag =
            static_cast<std::uint64_t>(w) * kIters + static_cast<unsigned>(i);
        DecisionRecord rec;
        rec.request_id = tag;
        rec.at_ns = static_cast<std::int64_t>(tag);
        rec.chosen = static_cast<ServerId>(tag % 1000);
        rec.polled_count = 2;
        for (int p = 0; p < 2; ++p) {
          rec.polled[p].server = static_cast<ServerId>(tag % 1000);
          rec.polled[p].queue_length = static_cast<std::int32_t>(tag % 1000);
          rec.polled[p].age_ns = static_cast<std::int64_t>(tag);
        }
        ring.record_decision(rec);
      }
    });
  }
  int snapshots = 0;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const DecisionRecord& rec : ring.snapshot()) {
        EXPECT_EQ(rec.request_id, static_cast<std::uint64_t>(rec.at_ns));
        EXPECT_EQ(rec.chosen, static_cast<ServerId>(rec.request_id % 1000));
        ASSERT_EQ(rec.polled_count, 2);
        for (int p = 0; p < 2; ++p) {
          EXPECT_EQ(rec.polled[p].server, rec.chosen) << "torn record";
          EXPECT_EQ(rec.polled[p].age_ns, rec.at_ns) << "torn record";
        }
      }
      ++snapshots;
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_GT(snapshots, 0);
  // Quiesced: the last capacity() claims are all sealed and readable.
  EXPECT_EQ(ring.snapshot().size(), ring.capacity());
}

// --- regret accounting -------------------------------------------------------

DecisionRecord audited_decision(std::uint64_t id, ServerId chosen,
                                std::initializer_list<std::int32_t> promised) {
  DecisionRecord rec;
  rec.request_id = id;
  rec.chosen = chosen;
  ServerId sid = 0;
  for (const std::int32_t q : promised) {
    rec.polled[rec.polled_count].server = sid++;
    rec.polled[rec.polled_count].queue_length = q;
    ++rec.polled_count;
  }
  return rec;
}

MergedRecord response_record(std::uint64_t id, std::int64_t qlen_at_arrival) {
  MergedRecord m;
  m.record.request_id = id;
  m.record.point = TracePoint::kResponse;
  m.record.detail = qlen_at_arrival;
  return m;
}

TEST(DecisionQualityTest, ReconstructionJoinsAndScoresExactly) {
  std::vector<DecisionRecord> decisions;
  // Promised min 2, realized 5: regret 3, a mistake.
  decisions.push_back(audited_decision(100, 0, {2, 4}));
  // Promised min 1, realized 1: perfect decision.
  decisions.push_back(audited_decision(200, 1, {3, 1}));
  // Realized better than promised: regret clamps at 0.
  decisions.push_back(audited_decision(300, 0, {6}));
  // Untraced decision (no kResponse record): not joined, not counted.
  decisions.push_back(audited_decision(999, 0, {1}));

  std::vector<MergedRecord> merged;
  merged.push_back(response_record(100, 5));
  merged.push_back(response_record(200, 1));
  merged.push_back(response_record(300, 2));
  // A non-response record for 999 must not create a join.
  MergedRecord pick;
  pick.record.request_id = 999;
  pick.record.point = TracePoint::kServerPick;
  pick.record.detail = 0;
  merged.push_back(pick);

  const DecisionQualitySummary q =
      reconstruct_decision_quality(decisions, merged);
  EXPECT_EQ(q.decisions, 3);
  EXPECT_EQ(q.mistakes, 1);
  EXPECT_EQ(q.blind_fallbacks, 0);
  EXPECT_EQ(q.regret_total, 3);
  EXPECT_DOUBLE_EQ(q.mistake_rate(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.mean_regret(), 1.0);
}

TEST(DecisionQualityTest, BlindFallbackPromisesNothing) {
  DecisionRecord blind;
  blind.request_id = 7;
  blind.chosen = 2;
  blind.blind_fallback = true;
  std::vector<MergedRecord> merged = {response_record(7, 4)};

  const DecisionQualitySummary q =
      reconstruct_decision_quality({blind}, merged);
  // A blind pick promised queue 0; landing on depth 4 is 4 units of regret.
  EXPECT_EQ(q.decisions, 1);
  EXPECT_EQ(q.blind_fallbacks, 1);
  EXPECT_EQ(q.mistakes, 1);
  EXPECT_EQ(q.regret_total, 4);

  // A blind pick that lands on an idle server has nothing to regret.
  std::vector<MergedRecord> idle = {response_record(7, 0)};
  const DecisionQualitySummary q2 = reconstruct_decision_quality({blind}, idle);
  EXPECT_EQ(q2.decisions, 1);
  EXPECT_EQ(q2.mistakes, 0);
  EXPECT_EQ(q2.regret_total, 0);
}

TEST(DecisionQualityTest, EmptyInputs) {
  const DecisionQualitySummary q = reconstruct_decision_quality({}, {});
  EXPECT_EQ(q.decisions, 0);
  EXPECT_DOUBLE_EQ(q.mistake_rate(), 0.0);
  EXPECT_DOUBLE_EQ(q.mean_regret(), 0.0);
}

// The sim and the prototype must publish quality under identical metric
// names — this is the name list the stats documents and the alert rules
// key on.
TEST(DecisionQualityTest, AppendedMetricNamesAreStable) {
  DecisionQualitySummary q;
  q.decisions = 10;
  q.mistakes = 4;
  q.blind_fallbacks = 1;
  q.regret_total = 6;

  MetricsSnapshot snap;
  append_decision_metrics(snap, q);

  const auto counter = [&](const std::string& name) -> std::int64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return -1;
  };
  const auto value = [&](const std::string& name) -> double {
    for (const auto& [n, v] : snap.values) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing value " << name;
    return -1.0;
  };
  EXPECT_EQ(counter("decisions_total"), 10);
  EXPECT_EQ(counter("decision_mistakes_total"), 4);
  EXPECT_EQ(counter("decision_blind_fallbacks"), 1);
  EXPECT_EQ(counter("decision_regret_total"), 6);
  EXPECT_DOUBLE_EQ(value("decision_mistake_rate"), 0.4);
  EXPECT_DOUBLE_EQ(value("decision_regret_mean"), 0.6);
}

TEST(DecisionQualityTest, GoldenJson) {
  DecisionQualitySummary q;
  q.decisions = 4;
  q.mistakes = 1;
  q.blind_fallbacks = 2;
  q.regret_total = 3;
  const std::string json = decision_quality_to_json(q);
  EXPECT_NE(json.find("\"decisions\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mistakes\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"blind_fallbacks\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"regret_total\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mistake_rate\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean_regret\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace finelb::telemetry
