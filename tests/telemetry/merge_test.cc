#include "telemetry/merge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace finelb::telemetry {
namespace {

constexpr std::uint64_t kId = (1ull << 40) | 10;

// Two-node scenario with a known 1 ms clock skew: the client is the
// reference; every server stamp is 1'000'000 ns ahead of the true time.
std::vector<NodeTrace> scenario() {
  NodeTrace client;
  client.source = "client.1";
  client.clock_offset_ns = 0;
  client.records = {
      {kId, TracePoint::kClientEnqueue, -1, 10'000'000, 0},
      {kId, TracePoint::kPollSent, -1, 10'001'000, 2},
      {kId, TracePoint::kPollReply, 0, 10'050'000, 3},
      {kId, TracePoint::kServerPick, 0, 10'060'000, 3},
      {kId, TracePoint::kDispatch, 0, 10'070'000, 0},
      {kId, TracePoint::kResponse, 0, 10'500'000, 5},
  };
  NodeTrace server;
  server.source = "server.0";
  server.clock_offset_ns = 1'000'000;
  server.records = {
      {kId, TracePoint::kLoadReplied, 0, 11'020'000, 3},
      {kId, TracePoint::kServiceStart, 0, 11'100'000, 5'000},
      {kId, TracePoint::kResponse, 0, 11'450'000, 5},
  };
  return {client, server};
}

TEST(MergeTest, AlignsAndOrdersAcrossSkewedClocks) {
  const auto nodes = scenario();
  const auto merged = merge_traces(nodes);
  ASSERT_EQ(merged.size(), 9u);
  // Aligned server stamps slot between the client records they causally
  // follow: load_replied lands between poll_sent and poll_reply.
  std::vector<TracePoint> order;
  for (const auto& m : merged) order.push_back(m.record.point);
  const std::vector<TracePoint> expected = {
      TracePoint::kClientEnqueue, TracePoint::kPollSent,
      TracePoint::kLoadReplied,   TracePoint::kPollReply,
      TracePoint::kServerPick,    TracePoint::kDispatch,
      TracePoint::kServiceStart,  TracePoint::kResponse,
      TracePoint::kResponse};
  EXPECT_EQ(order, expected);
  // The 1 ms skew is gone from the aligned timestamps.
  EXPECT_EQ(merged[2].record.at_ns, 10'020'000);
  EXPECT_EQ(merged[2].source, 1);
  // order_ns degenerates to at_ns when the aligned times already respect
  // causality.
  for (const auto& m : merged) EXPECT_EQ(m.order_ns, m.record.at_ns);
}

TEST(MergeTest, ResidualSkewRepairedByRunningMax) {
  // Leave 30 µs of unestimated skew: the server's load_replied aligns to
  // *before* the poll that caused it. The running max must give it a sort
  // key at its predecessor's time without changing the timestamp.
  auto nodes = scenario();
  nodes[1].clock_offset_ns = 1'000'000 + 30'000;
  const auto merged = merge_traces(nodes);
  ASSERT_EQ(merged.size(), 9u);
  EXPECT_EQ(merged[1].record.point, TracePoint::kPollSent);
  EXPECT_EQ(merged[2].record.point, TracePoint::kLoadReplied);
  EXPECT_EQ(merged[2].record.at_ns, 10'020'000 - 30'000);  // before poll!
  EXPECT_EQ(merged[2].order_ns, merged[1].order_ns);  // pinned to poll_sent
}

TEST(MergeTest, UnrelatedRequestsDoNotConstrainEachOther) {
  NodeTrace node;
  node.source = "client.0";
  node.records = {
      {1, TracePoint::kResponse, 0, 5'000, 0},
      {2, TracePoint::kClientEnqueue, -1, 1'000, 0},
  };
  const auto merged = merge_traces({node});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].record.request_id, 2u);
  EXPECT_EQ(merged[0].order_ns, 1'000);
  EXPECT_EQ(merged[1].order_ns, 5'000);
}

TEST(MergeTest, GoldenChromeTraceJson) {
  const auto nodes = scenario();
  const std::string json = to_chrome_trace_json(merge_traces(nodes), nodes);
  // Golden output: any change here is a consumer-visible format change to
  // the Perfetto export and must be deliberate.
  const std::string expected =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"ph":"M","name":"process_name","pid":0,"tid":0,"args":{"name":"client.1"}},)"
      R"({"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"server.0"}},)"
      R"({"ph":"X","name":"access #1099511627786","cat":"request","pid":0,"tid":0,"ts":0.000,"dur":500.000},)"
      R"({"ph":"X","name":"poll #1099511627786","cat":"request","pid":0,"tid":0,"ts":1.000,"dur":59.000},)"
      R"({"ph":"X","name":"service #1099511627786","cat":"request","pid":1,"tid":0,"ts":100.000,"dur":350.000},)"
      R"({"ph":"s","name":"dispatch","cat":"flow","id":1099511627786,"pid":0,"tid":0,"ts":70.000},)"
      R"({"ph":"f","name":"dispatch","cat":"flow","id":1099511627786,"pid":1,"tid":0,"ts":100.000,"bp":"e"},)"
      R"({"ph":"i","name":"load_replied","cat":"request","s":"t","pid":1,"tid":0,"ts":20.000,"args":{"trace_id":1099511627786,"detail":3}},)"
      R"({"ph":"i","name":"poll_reply","cat":"request","s":"t","pid":0,"tid":0,"ts":50.000,"args":{"trace_id":1099511627786,"detail":3}})"
      R"(]})";
  EXPECT_EQ(json, expected);
}

TEST(MergeTest, GoldenCsv) {
  const auto nodes = scenario();
  const std::string csv = to_csv(merge_traces(nodes), nodes);
  const std::string expected =
      "trace_id,point,node,source,at_ns,order_ns,detail\n"
      "1099511627786,client_enqueue,-1,client.1,10000000,10000000,0\n"
      "1099511627786,poll_sent,-1,client.1,10001000,10001000,2\n"
      "1099511627786,load_replied,0,server.0,10020000,10020000,3\n"
      "1099511627786,poll_reply,0,client.1,10050000,10050000,3\n"
      "1099511627786,server_pick,0,client.1,10060000,10060000,3\n"
      "1099511627786,dispatch,0,client.1,10070000,10070000,0\n"
      "1099511627786,service_start,0,server.0,10100000,10100000,5000\n"
      "1099511627786,response,0,server.0,10450000,10450000,5\n"
      "1099511627786,response,0,client.1,10500000,10500000,5\n";
  EXPECT_EQ(csv, expected);
}

TEST(MergeTest, StalenessFromMergedTimeline) {
  const auto nodes = scenario();
  const auto summary = compute_staleness(merge_traces(nodes));
  // The picked server answered the poll with Q=3; on arrival the request
  // found Q=5: staleness |3-5| = 2.
  EXPECT_EQ(summary.samples, 1);
  EXPECT_DOUBLE_EQ(summary.mean_abs_diff, 2.0);
  EXPECT_EQ(summary.max_abs_diff, 2);
  ASSERT_EQ(summary.abs_diff_counts.size(), 3u);
  EXPECT_EQ(summary.abs_diff_counts[2], 1);
  // Reply built at (aligned) 10'020'000; the dispatched request reached the
  // server at service_start - queue_wait = 10'100'000 - 5'000. Both stamps
  // come from the same server clock, so the 75 µs delay is skew-free.
  EXPECT_EQ(summary.delay_samples, 1);
  EXPECT_DOUBLE_EQ(summary.mean_delay_us, 75.0);

  const std::string json = staleness_to_json(summary);
  EXPECT_NE(json.find("\"samples\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mean_abs_diff\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dissemination_delay\""), std::string::npos);
}

TEST(MergeTest, StalenessSkipsRequestsWithoutBothEnds) {
  // A request with a pick but no poll reply from the picked server (e.g.
  // the reply came through the shared-cache path) contributes nothing.
  NodeTrace node;
  node.source = "client.0";
  node.records = {
      {7, TracePoint::kServerPick, 2, 1'000, 4},
      {7, TracePoint::kResponse, 2, 9'000, 6},
      {8, TracePoint::kPollReply, 1, 1'000, 2},  // reply but no pick
  };
  const auto summary = compute_staleness(merge_traces({node}));
  EXPECT_EQ(summary.samples, 0);
  EXPECT_EQ(summary.delay_samples, 0);
}

TEST(MergeTest, EmptyInputs) {
  EXPECT_TRUE(merge_traces({}).empty());
  const auto summary = compute_staleness({});
  EXPECT_EQ(summary.samples, 0);
  const std::string json = to_chrome_trace_json({}, {});
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

// --- cross-node histogram merging --------------------------------------------

// Exactness pin: merging per-node snapshots must reproduce, bit for bit,
// the snapshot one histogram recording every node's samples would have
// produced — count, sum-derived mean, min/max bounds, the quantiles, and
// the bucket list itself.
TEST(HistogramMergeTest, MergedPartsMatchSingleCombinedHistogram) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry node_a;
  Registry node_b;
  Registry combined;
  Histogram ha = node_a.histogram("response_ms");
  Histogram hb = node_b.histogram("response_ms");
  Histogram hc = combined.histogram("response_ms");

  // A deterministic spread crossing many log buckets, split unevenly
  // between the two nodes.
  double value = 0.037;
  for (int i = 0; i < 500; ++i) {
    (i % 3 == 0 ? ha : hb).record(value);
    hc.record(value);
    value *= 1.031;
    if (value > 5'000.0) value = 0.037;
  }

  const HistogramSnapshot sa = node_a.snapshot("a").histograms.at(0);
  const HistogramSnapshot sb = node_b.snapshot("b").histograms.at(0);
  const HistogramSnapshot expect = combined.snapshot("c").histograms.at(0);

  const std::vector<HistogramSnapshot> parts = {sa, sb};
  const HistogramSnapshot merged = merge_histograms(parts, "response_ms");
  EXPECT_EQ(merged.name, "response_ms");
  EXPECT_EQ(merged.count, expect.count);
  // The mean derives from per-shard double sums added in a different order
  // than the combined histogram's — equal up to summation reordering.
  EXPECT_NEAR(merged.mean, expect.mean, 1e-9 * expect.mean);
  EXPECT_DOUBLE_EQ(merged.p50, expect.p50);
  EXPECT_DOUBLE_EQ(merged.p95, expect.p95);
  EXPECT_DOUBLE_EQ(merged.p99, expect.p99);
  EXPECT_DOUBLE_EQ(merged.min, expect.min);
  EXPECT_DOUBLE_EQ(merged.max, expect.max);
  ASSERT_EQ(merged.buckets.size(), expect.buckets.size());
  for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged.buckets[i].first, expect.buckets[i].first);
    EXPECT_EQ(merged.buckets[i].second, expect.buckets[i].second);
  }
}

TEST(HistogramMergeTest, MergesAcrossNodeSnapshotsByName) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry a;
  Registry b;
  a.histogram("response_ms").record(1.0);
  a.histogram("queue_wait_ms").record(2.0);
  b.histogram("response_ms").record(4.0);
  const std::vector<MetricsSnapshot> nodes = {a.snapshot("a"),
                                              b.snapshot("b")};
  const std::vector<HistogramSnapshot> merged = merge_node_histograms(nodes);
  ASSERT_EQ(merged.size(), 2u);
  // First-appearance order; counts pool across nodes.
  EXPECT_EQ(merged[0].name, "response_ms");
  EXPECT_EQ(merged[0].count, 2);
  EXPECT_EQ(merged[1].name, "queue_wait_ms");
  EXPECT_EQ(merged[1].count, 1);
}

TEST(HistogramMergeTest, EmptyParts) {
  const HistogramSnapshot merged = merge_histograms({}, "nothing");
  EXPECT_EQ(merged.name, "nothing");
  EXPECT_EQ(merged.count, 0);
  EXPECT_TRUE(merged.buckets.empty());
}

}  // namespace
}  // namespace finelb::telemetry
