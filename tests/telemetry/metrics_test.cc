#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace finelb::telemetry {
namespace {

std::int64_t counter_value(const MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return -1;
}

const HistogramSnapshot* find_histogram(const MetricsSnapshot& snap,
                                        const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(RegistryTest, CounterGaugeHistogramRoundTrip) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  Counter c = registry.counter("requests_served");
  Gauge g = registry.gauge("queue_depth");
  Histogram h = registry.histogram("service_time_ms");
  c.add(3);
  c.inc();
  g.set(7);
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const MetricsSnapshot snap = registry.snapshot("node");
  EXPECT_EQ(snap.node, "node");
  EXPECT_EQ(counter_value(snap, "requests_served"), 4);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 7);
  const HistogramSnapshot* hist = find_histogram(snap, "service_time_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100);
  EXPECT_NEAR(hist->mean, 50.5, 1e-9);  // sum is exact, not bucketized
  EXPECT_NEAR(hist->p50, 50.0, 50.0 * 0.07);
  EXPECT_NEAR(hist->p99, 99.0, 99.0 * 0.07);
  EXPECT_GT(hist->max, 99.0);
  EXPECT_LE(hist->min, 1.0);
  EXPECT_FALSE(hist->buckets.empty());
  std::int64_t bucket_total = 0;
  for (const auto& [value, count] : hist->buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, hist->count);
}

TEST(RegistryTest, SameNameReturnsSameCell) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  registry.counter("x").inc();
  registry.counter("x").inc();
  registry.histogram("h").record(1.0);
  registry.histogram("h").record(2.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(counter_value(snap, "x"), 2);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2);
}

TEST(RegistryTest, ProbeGaugeEvaluatedAtSnapshot) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  std::atomic<std::int64_t> qlen{0};
  registry.probe("queue_depth", [&] { return qlen.load(); });
  qlen.store(42);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "queue_depth");
  EXPECT_EQ(snap.gauges[0].second, 42);
}

TEST(RegistryTest, DefaultConstructedHandlesAreInertNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(5);
  h.record(1.0);  // must not crash
}

TEST(RegistryTest, DisabledBuildYieldsEmptySnapshots) {
  if (kEnabled) GTEST_SKIP() << "covered by the FINELB_TELEMETRY=OFF build";
  Registry registry;
  registry.counter("x").inc();
  registry.histogram("h").record(1.0);
  const MetricsSnapshot snap = registry.snapshot("node");
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

// Heavy concurrent increments with a scraper running throughout: every
// snapshot must be internally consistent. Writers only ever add 2 at a time,
// so any odd counter value — or a histogram whose bucket sum disagrees with
// its count — would prove a torn read. Run under TSan via `-L runtime`.
TEST(RegistryConcurrencyTest, ScrapeDuringHeavyWritesNeverTearsCounters) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  constexpr int kWriters = 4;
  constexpr int kIters = 50000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry] {
      Counter c = registry.counter("paired");
      Histogram h = registry.histogram("latency_ms");
      for (int i = 0; i < kIters; ++i) {
        c.add(2);
        h.record(0.5 + static_cast<double>(i % 100));
      }
    });
  }

  std::int64_t last_count = 0;
  std::int64_t last_counter = 0;
  int scrapes = 0;
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.snapshot();
      ++scrapes;
      const std::int64_t paired = counter_value(snap, "paired");
      if (paired >= 0) {
        EXPECT_EQ(paired % 2, 0) << "torn counter";
        EXPECT_GE(paired, last_counter) << "counter went backwards";
        last_counter = paired;
      }
      if (const HistogramSnapshot* h = find_histogram(snap, "latency_ms")) {
        std::int64_t bucket_total = 0;
        for (const auto& [value, count] : h->buckets) bucket_total += count;
        EXPECT_EQ(bucket_total, h->count)
            << "count and buckets must agree mid-write";
        EXPECT_GE(h->count, last_count) << "histogram went backwards";
        last_count = h->count;
      }
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true);
  scraper.join();
  EXPECT_GT(scrapes, 0);

  const MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(counter_value(final_snap, "paired"), 2LL * kWriters * kIters);
  const HistogramSnapshot* h = find_histogram(final_snap, "latency_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::int64_t>(kWriters) * kIters);
  EXPECT_GT(h->mean, 0.0);
}

// Creating metrics while other threads record and scrape: registration takes
// the registry mutex, recording does not — they must still compose safely.
TEST(RegistryConcurrencyTest, ConcurrentRegistrationAndRecording) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        Counter c = registry.counter("shared");
        c.inc();
        Histogram h =
            registry.histogram(t % 2 == 0 ? "hist_even" : "hist_odd");
        h.record(static_cast<double>(i));
        if (i % 10 == 0) (void)registry.snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "shared"), 4 * 200);
}

}  // namespace
}  // namespace finelb::telemetry
