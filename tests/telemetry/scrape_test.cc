#include "telemetry/scrape.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client_node.h"
#include "cluster/server_node.h"
#include "fault/fault.h"
#include "telemetry/metrics.h"
#include "workload/catalog.h"

namespace finelb::telemetry {
namespace {

struct LiveServers {
  std::vector<std::unique_ptr<cluster::ServerNode>> servers;
  std::vector<cluster::ServerEndpoints> endpoints;

  explicit LiveServers(int n,
                       std::shared_ptr<fault::FaultInjector> fault = nullptr,
                       int faulty_index = -1) {
    for (int s = 0; s < n; ++s) {
      cluster::ServerOptions opts;
      opts.id = s;
      opts.inject_busy_reply_delay = false;
      opts.seed = 100 + static_cast<std::uint64_t>(s);
      if (s == faulty_index) opts.fault = fault;
      servers.push_back(std::make_unique<cluster::ServerNode>(opts));
      servers.back()->start();
      endpoints.push_back({servers.back()->id(),
                           servers.back()->service_address(),
                           servers.back()->load_address()});
    }
  }
  ~LiveServers() {
    for (auto& s : servers) s->stop();
  }
};

// An address that once belonged to a socket and no longer does: inquiries
// to it go nowhere, modelling a crashed node.
net::Address dead_address() {
  net::UdpSocket socket;
  return socket.local_address();
}

TEST(ScrapeHardeningTest, ClusterScrapeReturnsPartialResultsPastDeadNode) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  LiveServers cluster(2);
  std::vector<net::Address> addrs = {cluster.endpoints[0].load_addr,
                                     dead_address(),
                                     cluster.endpoints[1].load_addr};
  const ClusterStatsScrape scrape =
      scrape_cluster_stats(addrs, /*per_node_timeout=*/50 * kMillisecond,
                           /*retries_per_node=*/1);
  EXPECT_EQ(scrape.answered, 2);
  EXPECT_EQ(scrape.failed, 1);
  ASSERT_EQ(scrape.documents.size(), 3u);
  // Input order preserved; only the dead slot is empty.
  ASSERT_TRUE(scrape.documents[0].has_value());
  EXPECT_FALSE(scrape.documents[1].has_value());
  ASSERT_TRUE(scrape.documents[2].has_value());
  EXPECT_NE(scrape.documents[0]->find("\"node\":\"server.0\""),
            std::string::npos)
      << *scrape.documents[0];
  EXPECT_NE(scrape.documents[2]->find("\"node\":\"server.1\""),
            std::string::npos);
  EXPECT_EQ(scrape.answered_documents().size(), 2u);
}

TEST(ScrapeHardeningTest, ClusterScrapeSurvivesFaultInjectedStatsSocket) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  // Server 1's sockets (including the load socket answering STATS_INQUIRY)
  // drop every datagram: the scrape must charge that node one failed slot
  // and still return server 0's document.
  auto blackhole = std::make_shared<fault::FaultInjector>(
      fault::FaultSpec::symmetric_loss(1.0));
  LiveServers cluster(2, blackhole, /*faulty_index=*/1);
  const std::vector<net::Address> addrs = {cluster.endpoints[0].load_addr,
                                           cluster.endpoints[1].load_addr};
  const ClusterStatsScrape scrape =
      scrape_cluster_stats(addrs, /*per_node_timeout=*/50 * kMillisecond,
                           /*retries_per_node=*/2);
  EXPECT_EQ(scrape.answered, 1);
  EXPECT_EQ(scrape.failed, 1);
  ASSERT_EQ(scrape.documents.size(), 2u);
  EXPECT_TRUE(scrape.documents[0].has_value());
  EXPECT_FALSE(scrape.documents[1].has_value());
  EXPECT_GT(blackhole->counters().drops, 0);
}

TEST(ScrapeHardeningTest, SingleNodeScrapeTimesOutCleanly) {
  EXPECT_EQ(scrape_stats(dead_address(), 50 * kMillisecond), std::nullopt);
  EXPECT_EQ(scrape_trace(dead_address(), 50 * kMillisecond), std::nullopt);
  EXPECT_EQ(scrape_decisions(dead_address(), 50 * kMillisecond),
            std::nullopt);
}

// The chunked DECISION_INQUIRY channel end to end: a live client answering
// on its service socket hands its decision ring to a wire scraper mid-run.
TEST(ScrapeDecisionsTest, PullsAuditRecordsFromLiveClient) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  LiveServers cluster(2);
  cluster::ClientOptions copts;
  copts.id = 3;
  copts.policy = PolicyConfig::polling(2);
  copts.servers = cluster.endpoints;
  copts.total_requests = 1500;
  copts.warmup_requests = 0;
  copts.seed = 7;
  copts.decision_sample_period = 1;  // audit every dispatch
  static const Workload workload = make_poisson_exp(0.002);
  cluster::ClientNode client(copts, workload.make_source(1.0, 901));

  std::atomic<bool> done{false};
  std::thread runner([&] {
    client.run();
    done.store(true);
  });
  NodeDecisionScrape scrape;
  bool got = false;
  while (!done.load()) {
    auto result =
        scrape_decisions(client.decision_scrape_addr(), 50 * kMillisecond);
    if (result && !result->records.empty()) {
      scrape = std::move(*result);
      got = true;
      break;
    }
  }
  runner.join();
  ASSERT_TRUE(got) << "client finished before a decision scrape landed";
  EXPECT_EQ(scrape.node, 3);
  EXPECT_TRUE(scrape.complete);
  EXPECT_FALSE(scrape.clock_samples.empty());
  for (const DecisionRecord& rec : scrape.records) {
    EXPECT_NE(rec.chosen, kInvalidServer);
    if (!rec.blind_fallback) {
      ASSERT_GT(rec.polled_count, 0);
      ASSERT_LE(rec.polled_count, kDecisionPollMax);
      for (std::uint8_t i = 0; i < rec.polled_count; ++i) {
        EXPECT_GE(rec.polled[i].server, 0);
        EXPECT_LT(rec.polled[i].server, 2);
        EXPECT_GE(rec.polled[i].queue_length, 0);
      }
    }
  }
  // The wire records must reconcile with the in-process ring: every scraped
  // id is one the ring produced (the ring may have wrapped past the oldest).
  const std::vector<DecisionRecord> ring = client.decisions().snapshot();
  EXPECT_FALSE(ring.empty());
}

}  // namespace
}  // namespace finelb::telemetry
