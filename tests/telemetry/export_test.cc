#include "telemetry/export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

namespace finelb::telemetry {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.node = "server.3";
  snap.counters = {{"requests_served", 120}, {"polls_discarded", 4}};
  snap.gauges = {{"queue_depth", 2}};
  snap.values = {{"utilization", 0.731}};
  HistogramSnapshot hist;
  hist.name = "service_time_ms";
  hist.count = 120;
  hist.mean = 5.2;
  hist.p50 = 4.9;
  hist.p95 = 9.4;
  hist.p99 = 12.7;
  hist.min = 1.0;
  hist.max = 16.0;
  hist.buckets = {{4.9, 80}, {9.4, 40}};
  snap.histograms.push_back(hist);
  return snap;
}

TEST(ExportTest, JsonContainsEveryMetricFamily) {
  const std::string json = to_json(sample_snapshot());
  EXPECT_NE(json.find("\"node\":\"server.3\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_served\":120"), std::string::npos);
  EXPECT_NE(json.find("\"polls_discarded\":4"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":2"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\":0.731"), std::string::npos);
  EXPECT_NE(json.find("\"service_time_ms\":{\"count\":120"),
            std::string::npos);
  EXPECT_NE(json.find("\"p99\":12.7"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[4.9,80],[9.4,40]]"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportTest, JsonEscapesNodeNames) {
  MetricsSnapshot snap;
  snap.node = "we\"ird\\node\n";
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("we\\\"ird\\\\node\\n"), std::string::npos);
}

TEST(ExportTest, JsonWithTraceAppendsRecords) {
  std::vector<TraceRecord> trace;
  TraceRecord rec;
  rec.request_id = 42;
  rec.point = TracePoint::kPollDiscard;
  rec.node = 3;
  rec.at_ns = 123456;
  rec.detail = 9;
  trace.push_back(rec);
  const std::string json = to_json(sample_snapshot(), trace);
  EXPECT_NE(json.find("\"trace\":[{\"request\":42,\"point\":"
                      "\"poll_discard\",\"node\":3,\"t_ns\":123456,"
                      "\"detail\":9}]"),
            std::string::npos);
}

TEST(ExportTest, TextMentionsEveryMetric) {
  const std::string text = to_text(sample_snapshot());
  EXPECT_NE(text.find("server.3"), std::string::npos);
  EXPECT_NE(text.find("requests_served"), std::string::npos);
  EXPECT_NE(text.find("queue_depth"), std::string::npos);
  EXPECT_NE(text.find("service_time_ms"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(ExportTest, ClusterJsonMergesNodeDocuments) {
  const std::string cluster = cluster_to_json(
      {to_json(sample_snapshot()), "{\"node\":\"client.0\"}"});
  EXPECT_EQ(cluster.rfind("{\"nodes\":[", 0), 0u);
  EXPECT_NE(cluster.find("\"node\":\"server.3\""), std::string::npos);
  EXPECT_NE(cluster.find("\"node\":\"client.0\""), std::string::npos);
  EXPECT_EQ(cluster.back(), '}');
}

TEST(ExportTest, DumpRequestFlagIsConsumedOnce) {
  (void)consume_dump_request();  // drain any prior state
  EXPECT_FALSE(consume_dump_request());
  trigger_stats_dump();
  EXPECT_TRUE(consume_dump_request());
  EXPECT_FALSE(consume_dump_request());
}

TEST(ExportTest, Sigusr1DeliverySetsDumpFlag) {
  // End-to-end through real signal delivery: the installed handler must do
  // nothing but set the flag (async-signal-safety audit rides on the
  // static_assert + comment in export.cc; this pins the behavior).
  install_sigusr1_dump_handler();
  (void)consume_dump_request();
  EXPECT_FALSE(consume_dump_request());
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  EXPECT_TRUE(consume_dump_request());
  EXPECT_FALSE(consume_dump_request());

  // A second delivery works too — the disposition persists (sigaction, not
  // one-shot signal()).
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  EXPECT_TRUE(consume_dump_request());
}

TEST(ExportTest, StderrReporterDumpsOnRequest) {
  std::atomic<int> collects{0};
  {
    StderrReporter reporter([&] { return (++collects, std::string()); },
                            /*period=*/0);
    trigger_stats_dump();
    for (int i = 0; i < 100 && collects.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_GE(collects.load(), 1);
}

TEST(ExportTest, StderrReporterPeriodicDumps) {
  std::atomic<int> collects{0};
  {
    StderrReporter reporter([&] { return (++collects, std::string()); },
                            /*period=*/30 * kMillisecond);
    for (int i = 0; i < 100 && collects.load() < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_GE(collects.load(), 2);
}

}  // namespace
}  // namespace finelb::telemetry
