#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace finelb::telemetry {
namespace {

TEST(TraceRingTest, SamplingKnob) {
  TraceRing off(64, 0);
  EXPECT_FALSE(off.sampled(0));
  EXPECT_FALSE(off.sampled(16));

  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TraceRing every16(64, 16);
  EXPECT_TRUE(every16.sampled(0));
  EXPECT_TRUE(every16.sampled(32));
  EXPECT_FALSE(every16.sampled(33));
  TraceRing all(64, 1);
  EXPECT_TRUE(all.sampled(7));
}

TEST(TraceRingTest, RecordsCanonicalRequestPathInOrder) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TraceRing ring(64, 1);
  const TracePoint path[] = {
      TracePoint::kClientEnqueue, TracePoint::kPollSent,
      TracePoint::kPollReply,     TracePoint::kServerPick,
      TracePoint::kDispatch,      TracePoint::kServiceStart,
      TracePoint::kResponse,
  };
  std::int64_t t = 1000;
  for (const TracePoint p : path) ring.record(7, p, 2, t += 10, 5);

  const std::vector<TraceRecord> records = ring.snapshot();
  ASSERT_EQ(records.size(), 7u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].point, path[i]);
    EXPECT_EQ(records[i].request_id, 7u);
    EXPECT_EQ(records[i].node, 2);
    EXPECT_EQ(records[i].detail, 5);
    if (i > 0) {
      EXPECT_GT(records[i].at_ns, records[i - 1].at_ns);
    }
  }
}

TEST(TraceRingTest, WrapKeepsNewestRecords) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TraceRing ring(8, 1);
  for (int i = 0; i < 20; ++i) {
    ring.record(static_cast<std::uint64_t>(i), TracePoint::kDispatch, 0, i);
  }
  const std::vector<TraceRecord> records = ring.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].request_id, 12 + i);  // oldest-first, newest 8
  }
}

TEST(TraceRingTest, DisabledPeriodRecordsNothing) {
  TraceRing ring(8, 0);
  ring.record(1, TracePoint::kDispatch, 0, 0);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRingTest, PointNamesAreStable) {
  EXPECT_STREQ(trace_point_name(TracePoint::kClientEnqueue),
               "client_enqueue");
  EXPECT_STREQ(trace_point_name(TracePoint::kPollDiscard), "poll_discard");
  EXPECT_STREQ(trace_point_name(TracePoint::kResponse), "response");
}

// Writers hammering the ring while a reader snapshots: every returned record
// must be one that some writer actually produced, never a mix of two
// generations. Each writer tags records with request_id == at_ns == detail,
// so a torn record is directly detectable. Run under TSan via `-L runtime`.
TEST(TraceRingConcurrencyTest, SnapshotNeverReturnsTornRecords) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  TraceRing ring(32, 1);  // small ring: constant overwriting
  constexpr int kWriters = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kIters; ++i) {
        const auto tag =
            static_cast<std::uint64_t>(w) * kIters + static_cast<unsigned>(i);
        ring.record(tag, TracePoint::kPollReply, w,
                    static_cast<std::int64_t>(tag),
                    static_cast<std::int64_t>(tag));
      }
    });
  }
  int snapshots = 0;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceRecord& rec : ring.snapshot()) {
        EXPECT_EQ(rec.request_id, static_cast<std::uint64_t>(rec.at_ns));
        EXPECT_EQ(rec.at_ns, rec.detail) << "torn trace record";
        EXPECT_EQ(rec.request_id / kIters, static_cast<unsigned>(rec.node));
      }
      ++snapshots;
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_GT(snapshots, 0);
  // Quiesced: the last capacity() claims are all sealed and readable.
  EXPECT_EQ(ring.snapshot().size(), ring.capacity());
}

}  // namespace
}  // namespace finelb::telemetry
