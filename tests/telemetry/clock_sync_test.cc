#include "telemetry/clock_sync.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "net/pingpong.h"

namespace finelb::telemetry {
namespace {

// Synthetic two-clock world: the remote clock runs `offset` ahead of the
// local clock plus a frequency error of `drift_ppm`. A round trip started at
// local time t takes `uplink + downlink`, with the remote stamping halfway.
struct TwoClocks {
  std::int64_t offset_ns = 0;
  double drift_ppm = 0.0;

  std::int64_t remote_at(std::int64_t local_ns) const {
    return local_ns + offset_ns +
           static_cast<std::int64_t>(static_cast<double>(local_ns) *
                                     drift_ppm * 1e-6);
  }

  void round_trip(ClockSync& sync, std::int64_t local_send_ns,
                  std::int64_t uplink_ns, std::int64_t downlink_ns) const {
    sync.add_sample(local_send_ns, remote_at(local_send_ns + uplink_ns),
                    local_send_ns + uplink_ns + downlink_ns);
  }
};

TEST(ClockSyncTest, UnsyncedByDefault) {
  ClockSync sync;
  EXPECT_FALSE(sync.synced());
  EXPECT_EQ(sync.offset_ns(), 0);
  EXPECT_EQ(sync.sample_count(), 0);
}

TEST(ClockSyncTest, SymmetricPathRecoversOffsetExactly) {
  TwoClocks world;
  world.offset_ns = 123456789;
  ClockSync sync;
  world.round_trip(sync, 1'000'000, 5'000, 5'000);
  ASSERT_TRUE(sync.synced());
  EXPECT_EQ(sync.offset_ns(), world.offset_ns);
  EXPECT_EQ(sync.best_rtt_ns(), 10'000);
  // Mapping a remote stamp back lands on the local instant it was taken.
  EXPECT_EQ(sync.to_local(world.remote_at(1'005'000)), 1'005'000);
}

TEST(ClockSyncTest, NegativeOffsetRecovered) {
  TwoClocks world;
  world.offset_ns = -987654321;
  ClockSync sync;
  world.round_trip(sync, 50'000'000, 8'000, 8'000);
  EXPECT_EQ(sync.offset_ns(), world.offset_ns);
}

TEST(ClockSyncTest, AsymmetryErrorStaysWithinHalfRtt) {
  // Worst case: the whole RTT is spent on one leg. The midpoint estimate is
  // then off by RTT/2 — exactly the advertised bound, never more.
  TwoClocks world;
  world.offset_ns = 777;
  ClockSync sync;
  const std::int64_t rtt = 40'000;
  world.round_trip(sync, 2'000'000, rtt, 0);  // all uplink
  const std::int64_t err = sync.offset_ns() - world.offset_ns;
  EXPECT_LE(std::abs(err), rtt / 2);
  EXPECT_GE(sync.error_bound_ns(2'000'000 + rtt), std::abs(err));
}

TEST(ClockSyncTest, KeepsMinimumRttSample) {
  TwoClocks world;
  world.offset_ns = 5'000'000;
  ClockSync sync;
  // A wildly asymmetric slow sample first, then a tight symmetric one; the
  // tight one must win. A later slow sample must not displace it.
  world.round_trip(sync, 1'000'000, 90'000, 10'000);
  const std::int64_t coarse = sync.offset_ns();
  EXPECT_NE(coarse, world.offset_ns);
  world.round_trip(sync, 2'000'000, 2'000, 2'000);
  EXPECT_EQ(sync.offset_ns(), world.offset_ns);
  EXPECT_EQ(sync.best_rtt_ns(), 4'000);
  world.round_trip(sync, 3'000'000, 80'000, 20'000);
  EXPECT_EQ(sync.offset_ns(), world.offset_ns);
  EXPECT_EQ(sync.sample_count(), 3);
}

TEST(ClockSyncTest, RejectsNonPositiveRtt) {
  ClockSync sync;
  sync.add_sample(1000, 500, 1000);  // zero RTT
  sync.add_sample(1000, 500, 900);   // clock went backwards
  EXPECT_FALSE(sync.synced());
}

TEST(ClockSyncTest, ErrorBoundGrowsWithDrift) {
  ClockSync sync(100.0);  // 100 ppm
  sync.add_sample(0, 42, 10'000);
  const std::int64_t at_sync = sync.error_bound_ns(5'000);
  EXPECT_EQ(at_sync, 10'000 / 2);
  // One second later: 100 ppm accrues 100 µs of possible drift.
  const std::int64_t later = sync.error_bound_ns(5'000 + 1'000'000'000);
  EXPECT_GE(later, at_sync + 99'000);
  EXPECT_LE(later, at_sync + 101'000);
}

TEST(ClockSyncTest, DriftingClockStaysInsideBound) {
  // 50 ppm actual drift, ClockSync configured with a conservative 200 ppm.
  // After syncing once, mapping an event observed 2 seconds later must err
  // by no more than the advertised bound.
  TwoClocks world;
  world.offset_ns = 1'000'000;
  world.drift_ppm = 50.0;
  ClockSync sync(200.0);
  world.round_trip(sync, 1'000'000'000, 3'000, 3'000);
  const std::int64_t event_local = 3'000'000'000;
  const std::int64_t mapped = sync.to_local(world.remote_at(event_local));
  const std::int64_t err = std::abs(mapped - event_local);
  EXPECT_GT(err, 0);  // drift really did move the clocks apart
  EXPECT_LE(err, sync.error_bound_ns(event_local));
}

TEST(ClockSyncTest, IngestsPingPongSamples) {
  // End-to-end smoke against the real stamped echo path: loopback offsets
  // are ~0, so the recovered offset must be far below the sample's RTT.
  std::vector<net::ClockSample> samples;
  const auto result = net::measure_udp_rtt(50, 10, &samples);
  ASSERT_EQ(samples.size(), 50u);
  ClockSync sync;
  for (const auto& s : samples) {
    sync.add_sample(s.local_send_ns, s.remote_ns, s.local_recv_ns);
  }
  ASSERT_TRUE(sync.synced());
  EXPECT_GT(result.min_rtt_us, 0.0);
  EXPECT_LE(std::abs(sync.offset_ns()), sync.best_rtt_ns());
}

}  // namespace
}  // namespace finelb::telemetry
