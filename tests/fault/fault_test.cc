// Tests for the deterministic fault-injection subsystem: decision-stream
// determinism, counter bookkeeping, spec validation, and end-to-end
// injection at the UDP socket layer.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "fault/fault.h"
#include "net/clock.h"
#include "net/socket.h"

namespace finelb::fault {
namespace {

FaultSpec mixed_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.egress = {0.2, 0.1, 0.1, from_us(100), from_ms(2)};
  spec.ingress = {0.1, 0.0, 0.3, from_us(50), from_ms(1)};
  spec.seed = seed;
  return spec;
}

std::vector<FaultDecision> draw_sequence(FaultInjector& injector, int n) {
  std::vector<FaultDecision> out;
  out.reserve(static_cast<std::size_t>(2 * n));
  for (int i = 0; i < n; ++i) {
    out.push_back(injector.decide(Direction::kEgress));
    out.push_back(injector.decide(Direction::kIngress));
  }
  return out;
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  FaultInjector a(mixed_spec(1234));
  FaultInjector b(mixed_spec(1234));
  const auto seq_a = draw_sequence(a, 5000);
  const auto seq_b = draw_sequence(b, 5000);
  ASSERT_EQ(seq_a.size(), seq_b.size());
  for (std::size_t i = 0; i < seq_a.size(); ++i) {
    EXPECT_EQ(seq_a[i].action, seq_b[i].action) << "at decision " << i;
    EXPECT_EQ(seq_a[i].delay, seq_b[i].delay) << "at decision " << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(mixed_spec(1));
  FaultInjector b(mixed_spec(2));
  const auto seq_a = draw_sequence(a, 2000);
  const auto seq_b = draw_sequence(b, 2000);
  int differing = 0;
  for (std::size_t i = 0; i < seq_a.size(); ++i) {
    if (seq_a[i].action != seq_b[i].action) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, CountersMatchDecisions) {
  FaultInjector injector(mixed_spec(7));
  int drops = 0, dups = 0, delays = 0;
  const int n = 20'000;
  for (const FaultDecision& d : draw_sequence(injector, n / 2)) {
    drops += d.action == FaultAction::kDrop;
    dups += d.action == FaultAction::kDuplicate;
    delays += d.action == FaultAction::kDelay;
  }
  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.decisions, n);
  EXPECT_EQ(counters.drops, drops);
  EXPECT_EQ(counters.duplicates, dups);
  EXPECT_EQ(counters.delays, delays);
  // ~15% egress + ~5% ingress drops expected; loose 3-sigma style bounds.
  EXPECT_GT(counters.drops, n / 10);
  EXPECT_LT(counters.drops, n / 4);
}

TEST(FaultInjectorTest, DelaysRespectConfiguredBounds) {
  FaultSpec spec;
  spec.egress = {0.0, 0.0, 1.0, from_us(200), from_ms(3)};
  spec.seed = 11;
  FaultInjector injector(spec);
  for (int i = 0; i < 1000; ++i) {
    const FaultDecision d = injector.decide(Direction::kEgress);
    ASSERT_EQ(d.action, FaultAction::kDelay);
    EXPECT_GE(d.delay, from_us(200));
    EXPECT_LE(d.delay, from_ms(3));
  }
}

TEST(FaultInjectorTest, SymmetricLossHelper) {
  const FaultSpec spec = FaultSpec::symmetric_loss(0.1, 42);
  EXPECT_DOUBLE_EQ(spec.egress.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec.ingress.drop_prob, 0.1);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_TRUE(spec.any());
  EXPECT_FALSE(FaultSpec{}.any());
}

TEST(FaultInjectorTest, RejectsInvalidSpecs) {
  FaultSpec negative;
  negative.egress.drop_prob = -0.1;
  EXPECT_THROW(FaultInjector{negative}, InvariantError);

  FaultSpec oversum;
  oversum.ingress = {0.6, 0.3, 0.3, 0, 0};
  EXPECT_THROW(FaultInjector{oversum}, InvariantError);

  FaultSpec bad_delay;
  bad_delay.egress = {0.0, 0.0, 0.5, from_ms(2), from_ms(1)};
  EXPECT_THROW(FaultInjector{bad_delay}, InvariantError);
}

// --- socket-layer injection --------------------------------------------------

TEST(SocketFaultTest, EgressDropAllDeliversNothing) {
  net::UdpSocket sender;
  net::UdpSocket receiver;
  FaultSpec spec;
  spec.egress.drop_prob = 1.0;
  sender.attach_fault_injector(std::make_shared<FaultInjector>(spec));

  const std::array<std::uint8_t, 4> payload{1, 2, 3, 4};
  for (int i = 0; i < 20; ++i) {
    // The injector pretends success: a dropped datagram looks sent, just as
    // a switch drop would.
    EXPECT_TRUE(sender.send_to(payload, receiver.local_address()));
  }
  net::sleep_for(20 * kMillisecond);
  std::array<std::uint8_t, 64> buf{};
  EXPECT_FALSE(receiver.recv(buf).has_value());
}

TEST(SocketFaultTest, EgressDuplicateDeliversTwoCopies) {
  net::UdpSocket sender;
  net::UdpSocket receiver;
  FaultSpec spec;
  spec.egress.dup_prob = 1.0;
  sender.attach_fault_injector(std::make_shared<FaultInjector>(spec));

  const std::array<std::uint8_t, 4> payload{9, 8, 7, 6};
  ASSERT_TRUE(sender.send_to(payload, receiver.local_address()));
  net::sleep_for(20 * kMillisecond);
  std::array<std::uint8_t, 64> buf{};
  int received = 0;
  while (receiver.recv(buf)) ++received;
  EXPECT_EQ(received, 2);
}

TEST(SocketFaultTest, IngressDropAllReceivesNothing) {
  net::UdpSocket sender;
  net::UdpSocket receiver;
  FaultSpec spec;
  spec.ingress.drop_prob = 1.0;
  receiver.attach_fault_injector(std::make_shared<FaultInjector>(spec));

  const std::array<std::uint8_t, 4> payload{5, 5, 5, 5};
  ASSERT_TRUE(sender.send_to(payload, receiver.local_address()));
  net::sleep_for(20 * kMillisecond);
  std::array<std::uint8_t, 64> buf{};
  EXPECT_FALSE(receiver.recv(buf).has_value());
  EXPECT_GT(receiver.fault_injector()->counters().drops, 0);
}

TEST(SocketFaultTest, DelayedEgressArrivesAfterTheDelay) {
  net::UdpSocket sender;
  net::UdpSocket receiver;
  FaultSpec spec;
  spec.egress = {0.0, 0.0, 1.0, 30 * kMillisecond, 30 * kMillisecond};
  sender.attach_fault_injector(std::make_shared<FaultInjector>(spec));

  const std::array<std::uint8_t, 4> payload{1, 1, 2, 3};
  ASSERT_TRUE(sender.send_to(payload, receiver.local_address()));
  std::array<std::uint8_t, 64> buf{};
  EXPECT_FALSE(receiver.recv(buf).has_value()) << "datagram left too early";

  net::sleep_for(40 * kMillisecond);
  // Delayed egress is flushed by the next socket operation on the sender.
  std::array<std::uint8_t, 64> sender_buf{};
  (void)sender.recv(sender_buf);
  net::sleep_for(10 * kMillisecond);
  const auto size = receiver.recv(buf);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, payload.size());
}

TEST(SocketFaultTest, DetachRestoresCleanPath) {
  net::UdpSocket sender;
  net::UdpSocket receiver;
  FaultSpec spec;
  spec.egress.drop_prob = 1.0;
  sender.attach_fault_injector(std::make_shared<FaultInjector>(spec));
  sender.attach_fault_injector(nullptr);

  const std::array<std::uint8_t, 4> payload{4, 3, 2, 1};
  ASSERT_TRUE(sender.send_to(payload, receiver.local_address()));
  net::sleep_for(20 * kMillisecond);
  std::array<std::uint8_t, 64> buf{};
  EXPECT_TRUE(receiver.recv(buf).has_value());
}

}  // namespace
}  // namespace finelb::fault
