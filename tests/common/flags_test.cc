#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace finelb {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesTypedValues) {
  const Flags flags = make({"--count=42", "--rate=0.5", "--name=fine",
                            "--verbose"});
  EXPECT_EQ(flags.get_int("count", 0), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(flags.get_string("name", ""), "fine");
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenMissing) {
  const Flags flags = make({});
  EXPECT_EQ(flags.get_int("count", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.has("anything"));
}

TEST(FlagsTest, ListsParse) {
  const Flags flags = make({"--loads=0.5,0.7,0.9", "--sizes=2,3,8"});
  EXPECT_EQ(flags.get_double_list("loads", {}),
            (std::vector<double>{0.5, 0.7, 0.9}));
  EXPECT_EQ(flags.get_int_list("sizes", {}),
            (std::vector<std::int64_t>{2, 3, 8}));
}

TEST(FlagsTest, ListDefaults) {
  const Flags flags = make({});
  EXPECT_EQ(flags.get_double_list("loads", {0.9}),
            std::vector<double>{0.9});
}

TEST(FlagsTest, PositionalArguments) {
  const Flags flags = make({"--a=1", "input.txt", "out.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "out.txt");
}

TEST(FlagsTest, UnusedKeysDetected) {
  const Flags flags = make({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.get_int("used", 0), 1);
  const auto unused = flags.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, MalformedNumberThrows) {
  const Flags flags = make({"--count=abc"});
  EXPECT_THROW(flags.get_int("count", 0), InvariantError);
  EXPECT_THROW(flags.get_double("count", 0.0), InvariantError);
}

TEST(FlagsTest, EmptyFlagNameThrows) {
  EXPECT_THROW(make({"--=x"}), InvariantError);
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
}

}  // namespace
}  // namespace finelb
