#include "common/time.h"

#include <gtest/gtest.h>

namespace finelb {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
}

TEST(TimeTest, ConversionRoundTrips) {
  EXPECT_EQ(from_ms(1.5), 1'500'000);
  EXPECT_EQ(from_us(2.5), 2'500);
  EXPECT_EQ(from_sec(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_ms(from_ms(22.2)), 22.2);
  EXPECT_DOUBLE_EQ(to_us(from_us(516.0)), 516.0);
  EXPECT_DOUBLE_EQ(to_sec(3 * kSecond), 3.0);
}

TEST(TimeTest, ChronoInterop) {
  using namespace std::chrono_literals;
  EXPECT_EQ(from_chrono(5ms), 5 * kMillisecond);
  EXPECT_EQ(to_chrono(kSecond), std::chrono::nanoseconds(1'000'000'000));
  EXPECT_EQ(from_chrono(2s), 2 * kSecond);
}

TEST(TimeTest, NegativeDurationsSupported) {
  const SimDuration diff = from_ms(1.0) - from_ms(2.0);
  EXPECT_LT(diff, 0);
  EXPECT_DOUBLE_EQ(to_ms(diff), -1.0);
}

}  // namespace
}  // namespace finelb
