#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"

namespace finelb {
namespace {

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference values for SplitMix64 seeded with 1234567 (from the public
  // domain reference implementation).
  std::uint64_t state = 1234567;
  EXPECT_EQ(splitmix64(state), 6457827717110365317ull);
  EXPECT_EQ(splitmix64(state), 3203168211198807973ull);
  EXPECT_EQ(splitmix64(state), 9817491932198370423ull);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanAndVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit in 1000 draws
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(5);
  const std::uint64_t n = 3;
  std::vector<int> counts(n, 0);
  const int draws = 300000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform_int(n)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / 3.0, 0.01);
  }
}

TEST(RngTest, UniformIntRequiresPositiveBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), InvariantError);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(13);
  const double mean = 0.05;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(mean);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  const double sd = std::sqrt(sum_sq / n - m * m);
  EXPECT_NEAR(m, mean, 0.002);
  EXPECT_NEAR(sd, mean, 0.002);  // exponential: stddev == mean
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), InvariantError);
  EXPECT_THROW(rng.exponential(-1.0), InvariantError);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  const double sd = std::sqrt(sum_sq / n - m * m);
  EXPECT_NEAR(m, 3.0, 0.02);
  EXPECT_NEAR(sd, 2.0, 0.02);
}

TEST(RngTest, LognormalMedianIsExpMu) {
  Rng rng(19);
  std::vector<double> samples;
  const int n = 100001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(rng.lognormal(1.0, 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], std::exp(1.0), 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.split();
  // Child's output should differ from the parent's next outputs.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 5.0);
  }
  EXPECT_THROW(rng.uniform(5.0, 2.0), InvariantError);
}

}  // namespace
}  // namespace finelb
