#include "common/log.h"

#include <gtest/gtest.h>

namespace finelb {
namespace {

TEST(LogTest, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kWarn);
}

TEST(LogTest, SetAndGetLevel) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(LogTest, SuppressedLevelsDoNotEvaluate) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  FINELB_LOG(kDebug, "test") << count();
  EXPECT_EQ(evaluations, 0);
  FINELB_LOG(kError, "test") << count();
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

}  // namespace
}  // namespace finelb
