#include "common/log.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/flags.h"

namespace finelb {
namespace {

// Must run before any other test feeds parse_log_level an unknown name:
// the warning is one-time per process, and gtest runs tests in definition
// order within a file.
TEST(LogTest, UnknownNameWarnsOnStderrOnce) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("garbbage"), LogLevel::kWarn);
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("unknown log level"), std::string::npos);
  EXPECT_NE(first.find("garbbage"), std::string::npos);

  // Any further unknown name is silent — one warning per process.
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("garbbage"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("also-bad"), LogLevel::kWarn);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(LogTest, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kWarn);
}

TEST(LogTest, TryParseIsStrict) {
  EXPECT_EQ(try_parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(try_parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(try_parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(try_parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(try_parse_log_level(""), std::nullopt);
  EXPECT_EQ(try_parse_log_level("WARN"), std::nullopt);
  EXPECT_EQ(try_parse_log_level("warning"), std::nullopt);
}

TEST(LogTest, SetAndGetLevel) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(LogTest, SuppressedLevelsDoNotEvaluate) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  FINELB_LOG(kDebug, "test") << count();
  EXPECT_EQ(evaluations, 0);
  FINELB_LOG(kError, "test") << count();
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(LogTest, InitFromEnvironment) {
  const LogLevel original = log_level();
  ::setenv("FINELB_LOG", "debug", 1);
  init_log_level();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ::unsetenv("FINELB_LOG");
  set_log_level(original);
}

TEST(LogTest, InitLeavesLevelWhenEnvUnset) {
  const LogLevel original = log_level();
  ::unsetenv("FINELB_LOG");
  set_log_level(LogLevel::kError);
  init_log_level();
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(LogTest, FlagOverridesEnvironment) {
  const LogLevel original = log_level();
  ::setenv("FINELB_LOG", "error", 1);
  const char* argv[] = {"prog", "--log-level=info"};
  const Flags flags = Flags::parse(2, argv);
  init_log_level(flags);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  ::unsetenv("FINELB_LOG");
  set_log_level(original);
}

TEST(LogTest, EnvAppliesWhenFlagAbsent) {
  const LogLevel original = log_level();
  ::setenv("FINELB_LOG", "info", 1);
  const char* argv[] = {"prog"};
  const Flags flags = Flags::parse(1, argv);
  init_log_level(flags);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  ::unsetenv("FINELB_LOG");
  set_log_level(original);
}

}  // namespace
}  // namespace finelb
