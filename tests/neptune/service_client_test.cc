// End-to-end Neptune layer: directory + partitioned service nodes +
// load-balancing service client.
#include "neptune/service_client.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "common/check.h"
#include "cluster/directory.h"
#include "net/clock.h"
#include "neptune/service_node.h"

namespace finelb::neptune {
namespace {

constexpr std::uint16_t kGet = 1;
constexpr std::uint16_t kPut = 2;

/// A tiny partitioned key/value store service used as the test app.
class KvApp {
 public:
  void attach(ServiceNode& node) {
    node.register_method(kPut, [this](std::uint32_t partition,
                                      std::span<const std::uint8_t> args) {
      // args: key '\0' value
      const auto sep = std::find(args.begin(), args.end(), 0);
      FINELB_CHECK(sep != args.end(), "malformed put");
      std::lock_guard<std::mutex> lock(mutex_);
      data_[partition][std::string(args.begin(), sep)] =
          std::string(sep + 1, args.end());
      return std::vector<std::uint8_t>{};
    });
    node.register_method(kGet, [this](std::uint32_t partition,
                                      std::span<const std::uint8_t> args)
                                   -> std::vector<std::uint8_t> {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto& partition_map = data_[partition];
      const auto it = partition_map.find(std::string(args.begin(), args.end()));
      if (it == partition_map.end()) throw std::runtime_error("missing key");
      return {it->second.begin(), it->second.end()};
    });
  }

 private:
  std::mutex mutex_;
  std::map<std::uint32_t, std::map<std::string, std::string>> data_;
};

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

struct KvCluster {
  cluster::DirectoryServer directory;
  KvApp app;  // shared across replicas: stands in for replicated state
  std::vector<std::unique_ptr<ServiceNode>> nodes;

  // partition -> node ids hosting it
  explicit KvCluster(
      const std::vector<std::pair<ServerId, std::set<std::uint32_t>>>& spec) {
    directory.start();
    std::size_t publishes = 0;
    for (const auto& [id, partitions] : spec) {
      ServiceNodeOptions options;
      options.id = id;
      options.service_name = "kv";
      options.partitions = partitions;
      auto node = std::make_unique<ServiceNode>(options);
      app.attach(*node);
      node->enable_publishing(directory.address(), 50 * kMillisecond,
                              300 * kMillisecond);
      node->start();
      publishes += partitions.size();
      nodes.push_back(std::move(node));
    }
    // Wait until the directory holds every (node, partition) entry.
    const SimTime deadline = net::monotonic_now() + 5 * kSecond;
    while (directory.live_entries("kv").size() < publishes &&
           net::monotonic_now() < deadline) {
      net::sleep_for(10 * kMillisecond);
    }
  }
  ~KvCluster() {
    for (auto& node : nodes) node->stop();
    directory.stop();
  }

  ServiceClientOptions client_options(PolicyConfig policy) const {
    ServiceClientOptions options;
    options.service_name = "kv";
    options.directory = directory.address();
    options.policy = policy;
    options.rpc_timeout = 300 * kMillisecond;
    options.seed = 77;
    return options;
  }
};

TEST(ServiceClientTest, PutThenGetThroughPolling) {
  KvCluster cluster({{0, {0}}, {1, {0}}, {2, {1}}, {3, {1}}});
  ServiceClient client(cluster.client_options(PolicyConfig::polling(2)));
  EXPECT_EQ(client.replicas(0), 2u);
  EXPECT_EQ(client.replicas(1), 2u);

  const auto put = client.call(kPut, 1, bytes(std::string("k\0vee", 5)));
  ASSERT_TRUE(put.transport_ok);
  EXPECT_EQ(put.status, RpcStatus::kOk);

  const auto get = client.call(kGet, 1, bytes("k"));
  ASSERT_TRUE(get.transport_ok);
  EXPECT_EQ(get.status, RpcStatus::kOk);
  EXPECT_EQ(std::string(get.data.begin(), get.data.end()), "vee");
  EXPECT_GT(get.latency, 0);
  EXPECT_GE(client.stats().polls_sent, 2);
}

TEST(ServiceClientTest, AccessesSpreadAcrossReplicas) {
  KvCluster cluster({{0, {0}}, {1, {0}}, {2, {0}}});
  ServiceClient client(cluster.client_options(PolicyConfig::random()));
  client.call(kPut, 0, bytes(std::string("k\0v", 3)));

  std::map<ServerId, int> served_by;
  for (int i = 0; i < 60; ++i) {
    const auto result = client.call(kGet, 0, bytes("k"));
    ASSERT_TRUE(result.transport_ok);
    ++served_by[result.server];
  }
  EXPECT_EQ(served_by.size(), 3u) << "random policy must reach all replicas";
}

TEST(ServiceClientTest, RoundRobinCycles) {
  KvCluster cluster({{0, {0}}, {1, {0}}});
  ServiceClient client(cluster.client_options(PolicyConfig::round_robin()));
  client.call(kPut, 0, bytes(std::string("k\0v", 3)));
  std::map<ServerId, int> served_by;
  for (int i = 0; i < 10; ++i) {
    ++served_by[client.call(kGet, 0, bytes("k")).server];
  }
  ASSERT_EQ(served_by.size(), 2u);
  // Perfect alternation modulo the put: 5 +- 1 each.
  for (const auto& [id, count] : served_by) {
    (void)id;
    EXPECT_NEAR(count, 5, 1);
  }
}

TEST(ServiceClientTest, AppErrorsSurfaceWithoutRetryStorm) {
  KvCluster cluster({{0, {0}}});
  ServiceClient client(cluster.client_options(PolicyConfig::polling(2)));
  const auto result = client.call(kGet, 0, bytes("absent"));
  ASSERT_TRUE(result.transport_ok);
  EXPECT_EQ(result.status, RpcStatus::kAppError);
}

TEST(ServiceClientTest, UnknownPartitionFailsTransport) {
  KvCluster cluster({{0, {0}}});
  ServiceClientOptions options =
      cluster.client_options(PolicyConfig::polling(2));
  options.max_attempts = 2;
  ServiceClient client(options);
  const auto result = client.call(kGet, 9, bytes("k"));
  EXPECT_FALSE(result.transport_ok);
  EXPECT_EQ(client.stats().transport_failures, 1);
}

TEST(ServiceClientTest, FailoverToSurvivingReplica) {
  KvCluster cluster({{0, {0}}, {1, {0}}});
  ServiceClientOptions options =
      cluster.client_options(PolicyConfig::round_robin());
  options.mapping_refresh = 50 * kMillisecond;
  ServiceClient client(options);
  client.call(kPut, 0, bytes(std::string("k\0v", 3)));

  cluster.nodes[1]->stop();
  net::sleep_for(400 * kMillisecond);  // soft state expires (ttl 300 ms)

  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    const auto result = client.call(kGet, 0, bytes("k"));
    if (result.transport_ok && result.status == RpcStatus::kOk) {
      EXPECT_EQ(result.server, 0);
      ++ok;
    }
  }
  EXPECT_GE(ok, 9) << "client must converge on the surviving replica";
}

TEST(ServiceClientTest, RejectsUnsupportedPolicies) {
  KvCluster cluster({{0, {0}}});
  EXPECT_THROW(
      ServiceClient client(cluster.client_options(PolicyConfig::ideal())),
      InvariantError);
  EXPECT_THROW(ServiceClient client(cluster.client_options(
                   PolicyConfig::broadcast(kSecond))),
               InvariantError);
}

}  // namespace
}  // namespace finelb::neptune
