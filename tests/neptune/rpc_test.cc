#include "neptune/rpc.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace finelb::neptune {
namespace {

TEST(RpcCodecTest, RequestRoundTrip) {
  RpcRequest request;
  request.request_id = 0xabcdef0123456789ull;
  request.method = 7;
  request.partition = 3;
  request.args = {1, 2, 3, 4, 5};
  const auto decoded = RpcRequest::decode(request.encode());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.method, 7);
  EXPECT_EQ(decoded.partition, 3u);
  EXPECT_EQ(decoded.args, request.args);
}

TEST(RpcCodecTest, EmptyArgsAllowed) {
  RpcRequest request;
  request.request_id = 1;
  const auto decoded = RpcRequest::decode(request.encode());
  EXPECT_TRUE(decoded.args.empty());
}

TEST(RpcCodecTest, ResponseRoundTripAllStatuses) {
  for (const RpcStatus status :
       {RpcStatus::kOk, RpcStatus::kNoSuchMethod, RpcStatus::kNoSuchPartition,
        RpcStatus::kAppError}) {
    RpcResponse response;
    response.request_id = 42;
    response.status = status;
    response.server = 11;
    response.queue_at_arrival = 2;
    response.result = {9, 9, 9};
    const auto decoded = RpcResponse::decode(response.encode());
    EXPECT_EQ(decoded.status, status);
    EXPECT_EQ(decoded.server, 11);
    EXPECT_EQ(decoded.result, response.result);
  }
}

TEST(RpcCodecTest, LargePayloadWithinDatagramLimit) {
  RpcRequest request;
  request.request_id = 1;
  request.args.assign(60 * 1024, 0x5a);
  const auto decoded = RpcRequest::decode(request.encode());
  EXPECT_EQ(decoded.args.size(), 60u * 1024);
}

TEST(RpcCodecTest, OversizedPayloadRejected) {
  RpcRequest request;
  request.args.assign(60 * 1024 + 1, 0);
  EXPECT_THROW(request.encode(), InvariantError);
  RpcResponse response;
  response.result.assign(60 * 1024 + 1, 0);
  EXPECT_THROW(response.encode(), InvariantError);
}

TEST(RpcCodecTest, CrossDecodeRejected) {
  RpcRequest request;
  request.request_id = 1;
  EXPECT_THROW(RpcResponse::decode(request.encode()), InvariantError);
  RpcResponse response;
  response.request_id = 1;
  EXPECT_THROW(RpcRequest::decode(response.encode()), InvariantError);
}

TEST(RpcCodecTest, TruncatedPrefixesRejected) {
  RpcRequest request;
  request.request_id = 1;
  request.args = {1, 2, 3};
  const auto bytes = request.encode();
  const std::span<const std::uint8_t> all(bytes);
  for (std::size_t len = 1; len < bytes.size(); ++len) {
    EXPECT_THROW(RpcRequest::decode(all.subspan(0, len)), InvariantError);
  }
}

TEST(RpcCodecTest, UnknownStatusByteRejected) {
  RpcResponse response;
  response.request_id = 1;
  auto bytes = response.encode();
  bytes[9] = 250;  // status byte follows tag(1) + request_id(8)
  EXPECT_THROW(RpcResponse::decode(bytes), InvariantError);
}

}  // namespace
}  // namespace finelb::neptune
