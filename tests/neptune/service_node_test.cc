#include "neptune/service_node.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"
#include "telemetry/metrics.h"

namespace finelb::neptune {
namespace {

constexpr std::uint16_t kEcho = 1;
constexpr std::uint16_t kUpper = 2;
constexpr std::uint16_t kBoom = 3;

ServiceNodeOptions echo_options(ServerId id = 0) {
  ServiceNodeOptions options;
  options.id = id;
  options.service_name = "echo";
  options.partitions = {0, 1};
  return options;
}

std::unique_ptr<ServiceNode> make_echo_node(ServerId id = 0) {
  auto node = std::make_unique<ServiceNode>(echo_options(id));
  node->register_method(kEcho, [](std::uint32_t,
                                  std::span<const std::uint8_t> args) {
    return std::vector<std::uint8_t>(args.begin(), args.end());
  });
  node->register_method(kUpper, [](std::uint32_t,
                                   std::span<const std::uint8_t> args) {
    std::vector<std::uint8_t> out(args.begin(), args.end());
    for (auto& c : out) c = static_cast<std::uint8_t>(std::toupper(c));
    return out;
  });
  node->register_method(kBoom, [](std::uint32_t,
                                  std::span<const std::uint8_t>)
                            -> std::vector<std::uint8_t> {
    throw std::runtime_error("application failure");
  });
  return node;
}

RpcResponse call_raw(net::UdpSocket& socket, const net::Address& dest,
                     const RpcRequest& request) {
  EXPECT_TRUE(socket.send_to(request.encode(), dest));
  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::vector<std::uint8_t> buf(64 * 1024);
  const SimTime deadline = net::monotonic_now() + 2 * kSecond;
  while (net::monotonic_now() < deadline) {
    poller.wait(50 * kMillisecond);
    if (auto dgram = socket.recv_from(buf)) {
      return RpcResponse::decode(std::span(buf.data(), dgram->size));
    }
  }
  ADD_FAILURE() << "no RPC response";
  return {};
}

TEST(ServiceNodeTest, DispatchesToRegisteredMethod) {
  auto node = make_echo_node(4);
  node->start();
  net::UdpSocket client;
  RpcRequest request;
  request.request_id = 10;
  request.method = kUpper;
  request.partition = 1;
  request.args = {'h', 'i'};
  const RpcResponse response =
      call_raw(client, node->service_address(), request);
  EXPECT_EQ(response.status, RpcStatus::kOk);
  EXPECT_EQ(response.request_id, 10u);
  EXPECT_EQ(response.server, 4);
  EXPECT_EQ(response.result, (std::vector<std::uint8_t>{'H', 'I'}));
  node->stop();
  EXPECT_EQ(node->accesses_served(), 1);
}

TEST(ServiceNodeTest, UnknownMethodAndPartitionStatuses) {
  auto node = make_echo_node();
  node->start();
  net::UdpSocket client;

  RpcRequest request;
  request.request_id = 1;
  request.method = 99;
  request.partition = 0;
  EXPECT_EQ(call_raw(client, node->service_address(), request).status,
            RpcStatus::kNoSuchMethod);

  request.request_id = 2;
  request.method = kEcho;
  request.partition = 7;  // not hosted
  EXPECT_EQ(call_raw(client, node->service_address(), request).status,
            RpcStatus::kNoSuchPartition);
  node->stop();
}

TEST(ServiceNodeTest, HandlerExceptionsBecomeAppErrors) {
  auto node = make_echo_node();
  node->start();
  net::UdpSocket client;
  RpcRequest request;
  request.request_id = 3;
  request.method = kBoom;
  request.partition = 0;
  EXPECT_EQ(call_raw(client, node->service_address(), request).status,
            RpcStatus::kAppError);
  // Node survives the exception and keeps serving.
  request.request_id = 4;
  request.method = kEcho;
  request.args = {'x'};
  EXPECT_EQ(call_raw(client, node->service_address(), request).status,
            RpcStatus::kOk);
  node->stop();
  EXPECT_EQ(node->app_errors(), 1);
}

TEST(ServiceNodeTest, AnswersLoadInquiries) {
  auto node = make_echo_node();
  node->start();
  net::UdpSocket client;
  net::LoadInquiry inquiry;
  inquiry.seq = 55;
  ASSERT_TRUE(client.send_to(inquiry.encode(), node->load_address()));
  net::Poller poller;
  poller.add(client.fd(), 0);
  ASSERT_FALSE(poller.wait(2 * kSecond).empty());
  std::array<std::uint8_t, 64> buf{};
  const auto size = client.recv_from(buf);
  ASSERT_TRUE(size.has_value());
  const auto reply =
      net::LoadReply::decode(std::span(buf.data(), size->size));
  EXPECT_EQ(reply.seq, 55u);
  EXPECT_EQ(reply.queue_length, 0);
  node->stop();
}

TEST(ServiceNodeTest, AnswersStatsInquiriesWithJsonSnapshot) {
  auto node = make_echo_node(6);
  node->start();

  // Execute one access so the handler-time histogram is populated.
  net::UdpSocket rpc_client;
  RpcRequest request;
  request.request_id = 7;
  request.method = kEcho;
  request.partition = 0;
  request.args = {'h', 'i'};
  EXPECT_EQ(call_raw(rpc_client, node->service_address(), request).status,
            RpcStatus::kOk);
  // The served counter ticks just after the response is sent; wait for it
  // so the scrape below observes the completed access.
  const SimTime drain_deadline = net::monotonic_now() + kSecond;
  while (node->accesses_served() < 1 &&
         net::monotonic_now() < drain_deadline) {
    net::sleep_for(kMillisecond);
  }

  net::UdpSocket scraper;
  net::StatsInquiry inquiry;
  inquiry.seq = 404;
  ASSERT_TRUE(scraper.send_to(inquiry.encode(), node->load_address()));
  net::Poller poller;
  poller.add(scraper.fd(), 0);
  ASSERT_FALSE(poller.wait(2 * kSecond).empty());
  std::vector<std::uint8_t> buf(64 * 1024);
  const auto dgram = scraper.recv_from(buf);
  ASSERT_TRUE(dgram.has_value());
  net::StatsReply reply;
  ASSERT_TRUE(
      net::StatsReply::try_decode(std::span(buf.data(), dgram->size), reply));
  EXPECT_EQ(reply.seq, 404u);
  node->stop();

  EXPECT_NE(reply.payload.find("\"node\":\"neptune.echo.6\""),
            std::string::npos);
  if (telemetry::kEnabled) {
    EXPECT_NE(reply.payload.find("\"requests_served\":1"), std::string::npos);
    EXPECT_NE(reply.payload.find("\"service_time_ms\":{\"count\":1"),
              std::string::npos);
    EXPECT_NE(reply.payload.find("\"queue_depth\":"), std::string::npos);
  }
}

TEST(ServiceNodeTest, ValidationErrors) {
  ServiceNodeOptions no_name = echo_options();
  no_name.service_name.clear();
  EXPECT_THROW(ServiceNode node(no_name), InvariantError);

  ServiceNodeOptions no_partitions = echo_options();
  no_partitions.partitions.clear();
  EXPECT_THROW(ServiceNode node(no_partitions), InvariantError);

  auto node = std::make_unique<ServiceNode>(echo_options());
  EXPECT_THROW(node->start(), InvariantError) << "no methods registered";
  node->register_method(kEcho, [](std::uint32_t,
                                  std::span<const std::uint8_t> a) {
    return std::vector<std::uint8_t>(a.begin(), a.end());
  });
  EXPECT_THROW(
      node->register_method(kEcho,
                            [](std::uint32_t, std::span<const std::uint8_t>) {
                              return std::vector<std::uint8_t>{};
                            }),
      InvariantError)
      << "duplicate method id";
}

TEST(ServiceNodeTest, MalformedDatagramIgnored) {
  auto node = make_echo_node();
  node->start();
  net::UdpSocket client;
  const std::array<std::uint8_t, 2> garbage = {0xff, 0x01};
  ASSERT_TRUE(client.send_to(garbage, node->service_address()));
  net::sleep_for(30 * kMillisecond);
  EXPECT_EQ(node->queue_length(), 0);
  node->stop();
}

}  // namespace
}  // namespace finelb::neptune
